//! The NAS Parallel Benchmarks pseudorandom number generator.
//!
//! The NPB generator is the linear congruential scheme
//!
//! ```text
//! x_{k+1} = a · x_k  (mod 2^46),   a = 5^13,   period 2^44
//! ```
//!
//! returning `x_k · 2^-46 ∈ (0, 1)`. The reference implementation carries
//! the state in double precision split into halves; since the modulus is a
//! power of two, exact 128-bit integer arithmetic reproduces the identical
//! stream bit-for-bit, which is what this module does.
//!
//! Seed-jumping (`pow46`) lets each rank start its block of the stream
//! without generating its predecessors — the trick NAS `find_my_seed` /
//! `zran3`'s plane offsets rely on.

/// The NPB multiplier `a = 5^13`.
pub const A: u64 = 1_220_703_125;

/// The default NPB seed used by IS and MG.
pub const DEFAULT_SEED: u64 = 314_159_265;

const MOD_BITS: u32 = 46;
const MASK: u64 = (1u64 << MOD_BITS) - 1;
const SCALE: f64 = 1.0 / (1u64 << MOD_BITS) as f64;

/// The generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Randlc {
    x: u64,
}

impl Randlc {
    /// Creates a generator with the given seed (taken mod 2^46).
    pub fn new(seed: u64) -> Self {
        Randlc { x: seed & MASK }
    }

    /// The canonical NPB stream (`seed = 314159265`).
    pub fn nas_default() -> Self {
        Self::new(DEFAULT_SEED)
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Advances one step and returns the uniform variate in `(0, 1)` —
    /// NPB's `randlc(&x, a)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul_mod46(self.x, A);
        self.x as f64 * SCALE
    }

    /// Fills `out` with consecutive variates — NPB's `vranlc`.
    pub fn fill(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.next_f64();
        }
    }

    /// Jumps the generator forward by `n` steps in O(log n) time.
    pub fn jump(&mut self, n: u64) {
        self.x = mul_mod46(self.x, pow46(A, n));
    }

    /// A generator positioned `n` steps after this one.
    pub fn jumped(&self, n: u64) -> Self {
        let mut g = *self;
        g.jump(n);
        g
    }
}

/// `(x · y) mod 2^46` exactly.
#[inline]
pub fn mul_mod46(x: u64, y: u64) -> u64 {
    ((x as u128 * y as u128) & MASK as u128) as u64
}

/// `a^n mod 2^46` by binary exponentiation — NPB's `ipow46`.
pub fn pow46(a: u64, mut n: u64) -> u64 {
    let mut base = a & MASK;
    let mut acc = 1u64;
    while n > 0 {
        if n & 1 == 1 {
            acc = mul_mod46(acc, base);
        }
        base = mul_mod46(base, base);
        n >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_values_of_the_nas_stream() {
        // First step from the canonical seed: x1 = a·x0 mod 2^46.
        let mut g = Randlc::nas_default();
        let v = g.next_f64();
        let expected_state = mul_mod46(DEFAULT_SEED, A);
        assert_eq!(g.state(), expected_state);
        assert!((v - expected_state as f64 * SCALE).abs() < 1e-18);
    }

    #[test]
    fn variates_are_in_unit_interval_and_nondegenerate() {
        let mut g = Randlc::nas_default();
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!(v > 0.0 && v < 1.0);
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01, "min={min}");
        assert!(max > 0.99, "max={max}");
    }

    #[test]
    fn mean_is_about_half() {
        let mut g = Randlc::nas_default();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn jump_matches_stepping() {
        for n in [0u64, 1, 2, 17, 1000, 65_536] {
            let mut stepped = Randlc::nas_default();
            for _ in 0..n {
                stepped.next_f64();
            }
            let jumped = Randlc::nas_default().jumped(n);
            assert_eq!(stepped.state(), jumped.state(), "n={n}");
        }
    }

    #[test]
    fn pow46_agrees_with_repeated_multiplication() {
        let mut acc = 1u64;
        for n in 0..64u64 {
            assert_eq!(pow46(A, n), acc, "n={n}");
            acc = mul_mod46(acc, A);
        }
    }

    #[test]
    fn disjoint_blocks_tile_the_stream() {
        // Rank r generating block [r·k, (r+1)·k) from a jumped seed must
        // reproduce the serial stream exactly.
        let k = 1000;
        let mut serial = Randlc::nas_default();
        let mut reference = vec![0.0; 4 * k];
        serial.fill(&mut reference);
        for r in 0..4 {
            let mut g = Randlc::nas_default().jumped((r * k) as u64);
            let mut block = vec![0.0; k];
            g.fill(&mut block);
            assert_eq!(block.as_slice(), &reference[r * k..(r + 1) * k], "rank {r}");
        }
    }

    #[test]
    fn fill_equals_next_in_a_loop() {
        let mut a = Randlc::new(42);
        let mut b = Randlc::new(42);
        let mut buf = vec![0.0; 64];
        a.fill(&mut buf);
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, b.next_f64(), "i={i}");
        }
    }
}
