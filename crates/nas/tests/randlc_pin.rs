//! Pins `gv_nas::randlc::Randlc` and `gv_testkit::rng::Nas46` to the
//! identical bit stream.
//!
//! Both implement the NPB `randlc` generator (x ← 5¹³·x mod 2⁴⁶); the
//! benchmark copy lives here in `gv-nas`, the test-input copy in
//! `gv-testkit`. Nothing in the type system ties them together, so this
//! test does: every variate, every state, and the O(log n) jump must
//! match bit for bit. If either implementation drifts, NAS
//! verification values silently stop meaning anything.

use gv_nas::randlc::{Randlc, A, DEFAULT_SEED};
use gv_testkit::rng::Nas46;

#[test]
fn default_streams_are_bit_identical() {
    let mut ours = Randlc::nas_default();
    let mut theirs = Nas46::nas_default();
    for step in 0..10_000u64 {
        assert_eq!(
            ours.next_f64().to_bits(),
            theirs.next_f64().to_bits(),
            "variate diverged at step {step}"
        );
        assert_eq!(ours.state(), theirs.state(), "state diverged at step {step}");
    }
}

#[test]
fn arbitrary_seeds_agree() {
    // Includes seeds at and above 2^46, which both sides must mask.
    for seed in [0u64, 1, DEFAULT_SEED, A, (1 << 46) - 1, 1 << 46, u64::MAX] {
        let mut ours = Randlc::new(seed);
        let mut theirs = Nas46::new(seed);
        assert_eq!(ours.state(), theirs.state(), "seed {seed}: initial state");
        for step in 0..256u64 {
            assert_eq!(
                ours.next_f64().to_bits(),
                theirs.next_f64().to_bits(),
                "seed {seed}: diverged at step {step}"
            );
        }
    }
}

#[test]
fn log_time_jumps_agree_with_stepping_and_with_each_other() {
    for n in [0u64, 1, 2, 7, 1_000, 1 << 20, 1 << 45] {
        let jumped_ours = Randlc::nas_default().jumped(n);
        let jumped_theirs = Nas46::nas_default().jumped(n);
        assert_eq!(jumped_ours.state(), jumped_theirs.state(), "jump({n})");
    }
    // And the jump really is n sequential steps.
    let mut stepped = Nas46::nas_default();
    for _ in 0..1_000 {
        stepped.next_f64();
    }
    assert_eq!(
        stepped.state(),
        Randlc::nas_default().jumped(1_000).state(),
        "jump(1000) != 1000 steps"
    );
}
