//! The degenerate case: input, state and output types coincide.
//!
//! Paper §3: "If the input type, output type, and state type are the same,
//! then the global-view abstraction reduces to the local-view abstraction.
//! The identity function and combine function need to be specified by the
//! programmer." [`Monoid`] captures exactly those two functions (plus the
//! commutativity flag), and [`MonoidOp`] lifts any monoid into a full
//! [`ReduceScanOp`], deriving the accumulate and generate functions.

use crate::op::{ReduceScanOp, ScanKind};

/// An identity element and an associative combine over a single type — the
/// local-view operator of paper §2.
pub trait Monoid {
    /// The carrier type.
    type T;

    /// Whether the combine is commutative (see
    /// [`ReduceScanOp::COMMUTATIVE`]).
    const COMMUTATIVE: bool = true;

    /// The identity element.
    fn identity(&self) -> Self::T;

    /// `a = a ⊕ b`. For non-commutative monoids `a`'s elements precede
    /// `b`'s.
    fn combine(&self, a: &mut Self::T, b: &Self::T);

    /// Block-kernel hook: folds a whole slice into `a` at once. Returning
    /// `false` (the default) keeps the per-element combine loop; kernels
    /// (see [`crate::kernel`]) must honor the pinned regrouping contract.
    /// Only commutative monoids should install a lane kernel — the lane
    /// fold interleaves elements across lanes.
    fn combine_block(&self, _a: &mut Self::T, _block: &[Self::T]) -> bool {
        false
    }

    /// Block-kernel hook for elementwise slice combine:
    /// `a[i] = a[i] ⊕ b[i]`. Exact for every type (no regrouping).
    /// Returning `false` (the default) keeps the per-slot loop.
    fn combine_elementwise(&self, _a: &mut [Self::T], _b: &[Self::T]) -> bool {
        false
    }

    /// Block-kernel hook for scans: appends one output per element of
    /// `block` to `out` and leaves `carry` as the running fold through the
    /// block. Returning `false` (the default) keeps the per-element loop.
    fn scan_block(
        &self,
        _carry: &mut Self::T,
        _block: &[Self::T],
        _out: &mut Vec<Self::T>,
        _kind: ScanKind,
    ) -> bool {
        false
    }
}

/// A monoid whose combine can be inverted: `uncombine(a ⊕ b, b) = a`.
///
/// Paper §2: "Given the inclusive scan, it is impossible to compute the
/// exclusive scan without communication **if the combine function cannot
/// be inverted**. For example, a function that computes the minimum of two
/// values cannot be inverted." For monoids that *can* be inverted (sum,
/// xor, …) the exclusive scan falls out of the inclusive scan locally;
/// `gv_msgpass::localview::local_xscan_from_scan` exploits exactly this,
/// and `local_xscan_via_shift` is the shift-communication fallback the
/// paper describes for the rest.
pub trait InvertibleMonoid: Monoid {
    /// Removes `b`'s contribution from the right of `a`:
    /// `a = a ⊖ b` such that `uncombine(combine(x, b), b) == x`.
    fn uncombine(&self, a: &mut Self::T, b: &Self::T);
}

/// Adapter lifting a [`Monoid`] into a [`ReduceScanOp`] with
/// `In = State = Out = M::T`.
///
/// The accumulate function is the combine function (paper §3: "the combine
/// function is then used to accumulate the values into a local result") and
/// both generate functions pass the state through.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonoidOp<M>(pub M);

impl<M: Monoid> MonoidOp<M> {
    /// Wraps a monoid.
    pub fn new(monoid: M) -> Self {
        MonoidOp(monoid)
    }
}

impl<M: Monoid> ReduceScanOp for MonoidOp<M>
where
    M::T: Clone,
{
    type In = M::T;
    type State = M::T;
    type Out = M::T;

    const COMMUTATIVE: bool = M::COMMUTATIVE;

    fn ident(&self) -> M::T {
        self.0.identity()
    }

    fn accum(&self, state: &mut M::T, x: &M::T) {
        self.0.combine(state, x);
    }

    fn combine(&self, earlier: &mut M::T, later: M::T) {
        self.0.combine(earlier, &later);
    }

    fn red_gen(&self, state: M::T) -> M::T {
        state
    }

    fn scan_gen(&self, state: &M::T, _x: &M::T) -> M::T {
        state.clone()
    }

    fn accum_block(&self, state: &mut M::T, block: &[M::T]) -> bool {
        self.0.combine_block(state, block)
    }

    fn scan_block(
        &self,
        state: &mut M::T,
        block: &[M::T],
        out: &mut Vec<M::T>,
        kind: ScanKind,
    ) -> bool {
        self.0.scan_block(state, block, out, kind)
    }

    fn combine_slots(&self, earlier: &mut [M::T], later: Vec<M::T>) {
        if !self.0.combine_elementwise(earlier, &later) {
            crate::kernel::note_scalar_block();
            for (a, b) in earlier.iter_mut().zip(&later) {
                self.0.combine(a, b);
            }
        }
    }

    fn accum_slots(&self, states: &mut [M::T], row: &[M::T]) {
        if !self.0.combine_elementwise(states, row) {
            for (s, x) in states.iter_mut().zip(row) {
                self.0.combine(s, x);
            }
        }
    }
}

/// Implements `red_gen`/`scan_gen` as state passthroughs for an operator
/// whose `State` and `Out` types coincide (and `State: Clone`).
///
/// Use inside an `impl ReduceScanOp for …` block:
///
/// ```
/// use gv_core::op::ReduceScanOp;
///
/// struct BitOr;
/// impl ReduceScanOp for BitOr {
///     type In = u64;
///     type State = u64;
///     type Out = u64;
///     fn ident(&self) -> u64 { 0 }
///     fn accum(&self, s: &mut u64, x: &u64) { *s |= *x; }
///     fn combine(&self, a: &mut u64, b: u64) { *a |= b; }
///     gv_core::impl_passthrough_gen!();
/// }
/// ```
#[macro_export]
macro_rules! impl_passthrough_gen {
    () => {
        fn red_gen(&self, state: Self::State) -> Self::Out {
            state
        }
        fn scan_gen(&self, state: &Self::State, _x: &Self::In) -> Self::Out {
            state.clone()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::accumulate_block;

    struct Concat;
    impl Monoid for Concat {
        type T = String;
        const COMMUTATIVE: bool = false;
        fn identity(&self) -> String {
            String::new()
        }
        fn combine(&self, a: &mut String, b: &String) {
            a.push_str(b);
        }
    }

    #[test]
    fn monoid_op_accumulates_in_order() {
        let op = MonoidOp(Concat);
        let mut s = op.ident();
        let input: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        accumulate_block(&op, &mut s, &input);
        assert_eq!(s, "abc");
        const { assert!(!<MonoidOp<Concat> as ReduceScanOp>::COMMUTATIVE) };
    }

    #[test]
    fn monoid_op_generates_passthrough() {
        let op = MonoidOp(Concat);
        assert_eq!(op.red_gen("xy".to_string()), "xy");
        assert_eq!(op.scan_gen(&"xy".to_string(), &"ignored".to_string()), "xy");
    }
}
