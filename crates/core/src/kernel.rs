//! Intra-rank block kernels: the vector-lane tier under the engines.
//!
//! The repository's reduction path is tiered like the generic GPU design
//! (arXiv:1710.07358): vector lanes within a block (this module), the
//! `gv-executor` chunked tree across cores (`crate::par`), message-passing
//! ranks across the machine (`gv-msgpass`/`gv-rsmpi`). Everything here is
//! plain Rust over fixed-width lane arrays — the workspace is hermetic, so
//! there is no `std::simd` and no intrinsics crate; LLVM auto-vectorizes
//! the lane loops, and runtime ISA dispatch (memchr-style:
//! `is_x86_feature_detected!` + `#[target_feature]` monomorphizations of
//! the *same* loop) lets one portable binary use AVX2/AVX-512 registers
//! without changing a single result.
//!
//! # The float-determinism contract
//!
//! Integer, bitwise and boolean kernels are *regrouping-invariant*: they
//! produce results bit-identical to the per-element scalar loop, always.
//! Float kernels necessarily reassociate (that is where the speedup comes
//! from), so their grouping is **pinned** instead of left to the optimizer:
//!
//! * [`fold_block`] folds lane `l ∈ 0..LANES` over elements
//!   `l, l+LANES, l+2·LANES, …` of the full-group prefix, folds the lanes
//!   together in ascending lane order, then folds the remainder serially —
//!   exactly the algorithm [`fold_block_reference`] spells out.
//! * [`scan_block_network`] runs a [`SCAN_GROUP`]-wide Hillis–Steele
//!   prefix network per group with a serial carry between groups
//!   ([`scan_block_network_reference`] is the spelled-out oracle).
//!
//! The lane count and group width are compile-time constants, the dispatch
//! variants are monomorphizations of one body, and no variant enables FMA
//! contraction — so the same input produces the same float result on every
//! run, every thread count, and every ISA tier. Changing [`LANES`] or
//! [`SCAN_GROUP`] *is* a semantic change for floats and must be treated
//! like one (recordings re-checked).
//!
//! NaN caveat (same as MPI's `MPI_MIN`/`MPI_MAX`): comparison-based folds
//! and scans are only regrouping-invariant for totally-ordered float data,
//! because `if b < a { b } else { a }` is not associative across NaN (or
//! a +0/−0 mix). The pinned regrouping still makes them deterministic;
//! they just may differ from the serial order when NaNs are present.
//!
//! # Dispatch observability
//!
//! Every block routed through a kernel ticks a process-wide counter, and
//! every block that falls back to the generic per-element loop ticks
//! another ([`dispatch_counts`]). `gv-msgpass` snapshots both into its
//! `StatsSnapshot` as *observed* counters — masked from determinism pins
//! exactly like the transport counters, because they measure how compute
//! ran, not what it produced.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::op::ScanKind;

/// Accumulator lanes in a [`fold_block`] group. Pinned: part of the float
/// results' definition, not a tuning knob (32 × 8-byte lanes = four
/// AVX-512 registers, eight AVX2, sixteen SSE2 — enough independent
/// chains to cover FP-add latency on all of them).
pub const LANES: usize = 32;

/// Width of the [`scan_block_network`] prefix network. Pinned for the same
/// reason as [`LANES`].
pub const SCAN_GROUP: usize = 8;

static KERNEL_BLOCKS: AtomicU64 = AtomicU64::new(0);
static SCALAR_BLOCKS: AtomicU64 = AtomicU64::new(0);

/// Records one block dispatched through a specialized block kernel.
#[inline]
pub fn note_kernel_block() {
    KERNEL_BLOCKS.fetch_add(1, Ordering::Relaxed);
}

/// Records one block handled by the generic per-element scalar loop.
#[inline]
pub fn note_scalar_block() {
    SCALAR_BLOCKS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide `(kernel_blocks, scalar_blocks)` dispatch counts.
///
/// Observed (not modeled) and monotone; consumers that need a delta take
/// two readings. The counters say nothing about results — they exist so
/// benchmarks and stats can *prove* which path ran.
pub fn dispatch_counts() -> (u64, u64) {
    (
        KERNEL_BLOCKS.load(Ordering::Relaxed),
        SCALAR_BLOCKS.load(Ordering::Relaxed),
    )
}

/// Which vector ISA tier the dispatcher selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaTier {
    /// Baseline build target (SSE2 on x86-64); also every non-x86 arch.
    Portable,
    /// AVX2 detected at runtime.
    Avx2,
    /// AVX-512 (F+DQ+BW+VL) detected at runtime.
    Avx512,
}

impl IsaTier {
    /// Short display name (`sse2`/`avx2`/`avx512`).
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Portable => "portable",
            IsaTier::Avx2 => "avx2",
            IsaTier::Avx512 => "avx512",
        }
    }
}

/// Detects the ISA tier the kernels will run on. Cheap to call (the std
/// detection macro caches in an atomic).
#[inline]
pub fn isa_tier() -> IsaTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return IsaTier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return IsaTier::Avx2;
        }
    }
    IsaTier::Portable
}

// ---------------------------------------------------------------------------
// Lane fold (reduce / accumulate kernels)
// ---------------------------------------------------------------------------

/// The one lane-fold body. Every ISA variant is a monomorphization of this
/// exact code, so the value computed is ISA-independent by construction.
#[inline(always)]
fn fold_block_body<T: Copy>(ident: T, block: &[T], f: impl Fn(T, T) -> T + Copy) -> T {
    if block.len() < LANES {
        let mut total = ident;
        for &x in block {
            total = f(total, x);
        }
        return total;
    }
    let mut acc = [ident; LANES];
    let n = block.len();
    let mut i = 0;
    // 4× unrolled main loop. Lane l still folds its elements strictly in
    // sequence (l, l+LANES, l+2·LANES, …), so the unroll is a scheduling
    // change only — the combine tree is identical to the 1× loop below.
    while i + 4 * LANES <= n {
        let c = &block[i..i + 4 * LANES];
        for (l, a) in acc.iter_mut().enumerate() {
            let t = f(*a, c[l]);
            let t = f(t, c[LANES + l]);
            let t = f(t, c[2 * LANES + l]);
            *a = f(t, c[3 * LANES + l]);
        }
        i += 4 * LANES;
    }
    while i + LANES <= n {
        let c = &block[i..i + LANES];
        for (a, &x) in acc.iter_mut().zip(c) {
            *a = f(*a, x);
        }
        i += LANES;
    }
    let mut total = acc[0];
    for &a in &acc[1..] {
        total = f(total, a);
    }
    for &x in &block[i..] {
        total = f(total, x);
    }
    total
}

/// The pinned-regrouping oracle for [`fold_block`]: same body, no runtime
/// dispatch. Property tests compare the dispatched kernel against this.
pub fn fold_block_reference<T: Copy>(ident: T, block: &[T], f: impl Fn(T, T) -> T + Copy) -> T {
    fold_block_body(ident, block, f)
}

/// Folds `block` into a single value over [`LANES`] independent
/// accumulator lanes, dispatching to the widest detected ISA.
///
/// Regrouping is pinned (module docs): for regrouping-invariant `f`
/// (wrapping integer sums, min/max, bitwise, boolean) the result is
/// bit-identical to a serial fold; for floats it equals
/// [`fold_block_reference`] on every ISA.
///
/// `ident` must be a true identity of `f` — it pads the lane array.
#[inline]
pub fn fold_block<T: Copy>(ident: T, block: &[T], f: impl Fn(T, T) -> T + Copy) -> T {
    #[cfg(target_arch = "x86_64")]
    match isa_tier() {
        // SAFETY: the matching features were just detected at runtime.
        IsaTier::Avx512 => return unsafe { fold_block_avx512(ident, block, f) },
        // SAFETY: AVX2 was just detected at runtime.
        IsaTier::Avx2 => return unsafe { fold_block_avx2(ident, block, f) },
        IsaTier::Portable => {}
    }
    fold_block_body(ident, block, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn fold_block_avx2<T: Copy>(ident: T, block: &[T], f: impl Fn(T, T) -> T + Copy) -> T {
    fold_block_body(ident, block, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq", enable = "avx512bw", enable = "avx512vl")]
fn fold_block_avx512<T: Copy>(ident: T, block: &[T], f: impl Fn(T, T) -> T + Copy) -> T {
    fold_block_body(ident, block, f)
}

// ---------------------------------------------------------------------------
// Elementwise slice combine (splittable vector states, aggregated slots)
// ---------------------------------------------------------------------------

#[inline(always)]
fn combine_elementwise_body<T: Copy>(a: &mut [T], b: &[T], f: impl Fn(T, T) -> T + Copy) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = f(*x, y);
    }
}

/// `a[i] = f(a[i], b[i])` over `min(a.len(), b.len())` slots, in place,
/// dispatched to the widest detected ISA.
///
/// Purely elementwise — no regrouping — so this is exact for *every* type,
/// floats included. This is the segment-combine kernel under the
/// reduce-scatter/circulant collectives and the aggregated (multi-slot)
/// reductions.
#[inline]
pub fn combine_elementwise<T: Copy>(a: &mut [T], b: &[T], f: impl Fn(T, T) -> T + Copy) {
    note_kernel_block();
    combine_elementwise_dispatch(a, b, f)
}

/// [`combine_elementwise`] without the dispatch-counter tick, for callers
/// that already account for the enclosing block (e.g. [`count_into`]).
#[inline]
fn combine_elementwise_dispatch<T: Copy>(a: &mut [T], b: &[T], f: impl Fn(T, T) -> T + Copy) {
    #[cfg(target_arch = "x86_64")]
    match isa_tier() {
        // SAFETY: the matching features were just detected at runtime.
        IsaTier::Avx512 => return unsafe { combine_elementwise_avx512(a, b, f) },
        // SAFETY: AVX2 was just detected at runtime.
        IsaTier::Avx2 => return unsafe { combine_elementwise_avx2(a, b, f) },
        IsaTier::Portable => {}
    }
    combine_elementwise_body(a, b, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn combine_elementwise_avx2<T: Copy>(a: &mut [T], b: &[T], f: impl Fn(T, T) -> T + Copy) {
    combine_elementwise_body(a, b, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq", enable = "avx512bw", enable = "avx512vl")]
fn combine_elementwise_avx512<T: Copy>(a: &mut [T], b: &[T], f: impl Fn(T, T) -> T + Copy) {
    combine_elementwise_body(a, b, f)
}

// ---------------------------------------------------------------------------
// Scan block kernels
// ---------------------------------------------------------------------------

/// Serial-order block scan written in slice form: appends one output per
/// element to `out` and leaves `carry` as the fold through the block.
///
/// The combine order is *identical* to the engines' per-element loop, so
/// the outputs are bit-identical to the scalar path for every type and
/// every input (NaNs included) — the win comes purely from loop hygiene
/// (preallocated writes instead of per-element `push`, no per-element
/// `ScanKind` match). This is the right scan kernel for latency-1
/// dependent chains (integer sums, bitwise, integer min/max), which
/// already run at ~1 element/cycle; high-latency float chains use
/// [`scan_block_network`] instead.
pub fn scan_block_serial<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut Vec<T>,
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    let start = out.len();
    out.resize(start + block.len(), *carry);
    let dst = &mut out[start..];
    match kind {
        ScanKind::Inclusive => {
            let mut c = *carry;
            for (o, &x) in dst.iter_mut().zip(block) {
                c = f(c, x);
                *o = c;
            }
            *carry = c;
        }
        ScanKind::Exclusive => {
            let mut c = *carry;
            for (o, &x) in dst.iter_mut().zip(block) {
                *o = c;
                c = f(c, x);
            }
            *carry = c;
        }
    }
}

/// One [`SCAN_GROUP`]-wide Hillis–Steele prefix network, hand-unrolled.
///
/// Each step reads the pre-step values (`p`), which computes exactly what
/// the classic in-place descending-index update computes — it is spelled
/// as three constant-trip elementwise loops so LLVM can turn each step
/// into shuffle + combine vector ops. The network never applies `ident`:
/// it is pure regrouping, so it is bit-identical to a serial scan for any
/// exactly-associative `f` (wrapping ints, bitwise, totally-ordered
/// min/max).
#[inline(always)]
fn network_group<T: Copy>(v: &mut [T; SCAN_GROUP], f: impl Fn(T, T) -> T + Copy) {
    const _: () = assert!(SCAN_GROUP == 8, "network_group is hand-unrolled for SCAN_GROUP == 8");
    let p = *v;
    for j in 1..8 {
        v[j] = f(p[j - 1], p[j]);
    }
    let p = *v;
    for j in 2..8 {
        v[j] = f(p[j - 2], p[j]);
    }
    let p = *v;
    for j in 4..8 {
        v[j] = f(p[j - 4], p[j]);
    }
}

/// Groups per super-chunk in [`scan_block_network_body`]. Pass 1 runs
/// `SUPER` group networks with no carry on the critical path; pass 2
/// threads the carry through the group totals. The combine tree is
/// identical to processing one group at a time — the split is purely a
/// scheduling change, so `SUPER` is *not* part of the pinned contract.
const SCAN_SUPER: usize = 16;

/// The one network-scan body; every ISA variant monomorphizes this code.
#[inline(always)]
fn scan_block_network_body<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut [T],
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    const W: usize = SCAN_GROUP;
    debug_assert_eq!(block.len(), out.len());
    // Pass-1/pass-2 super-chunks: the group networks are mutually
    // independent, so they pipeline; only the cheap per-group total fold
    // sits on the serial carry chain.
    let mut super_b = block.chunks_exact(W * SCAN_SUPER);
    let mut super_o = out.chunks_exact_mut(W * SCAN_SUPER);
    for (sb, so) in (&mut super_b).zip(&mut super_o) {
        let mut totals = [sb[0]; SCAN_SUPER];
        for ((group, og), t) in sb.chunks_exact(W).zip(so.chunks_exact_mut(W)).zip(&mut totals) {
            let mut v = [group[0]; W];
            v.copy_from_slice(group);
            network_group(&mut v, f);
            *t = v[W - 1];
            og.copy_from_slice(&v);
        }
        for (og, &t) in so.chunks_exact_mut(W).zip(&totals) {
            let c = *carry;
            match kind {
                ScanKind::Inclusive => {
                    for x in og.iter_mut() {
                        *x = f(c, *x);
                    }
                }
                ScanKind::Exclusive => {
                    // In-place shift-by-one: descending j reads the
                    // not-yet-overwritten scanned value at j − 1.
                    let mut j = W;
                    while j > 1 {
                        j -= 1;
                        og[j] = f(c, og[j - 1]);
                    }
                    og[0] = c;
                }
            }
            *carry = f(c, t);
        }
    }
    let mut groups = super_b.remainder().chunks_exact(W);
    let mut outs = super_o.into_remainder().chunks_exact_mut(W);
    for (group, og) in (&mut groups).zip(&mut outs) {
        let mut v = [group[0]; W];
        v.copy_from_slice(group);
        network_group(&mut v, f);
        let c = *carry;
        match kind {
            ScanKind::Inclusive => {
                for (o, &x) in og.iter_mut().zip(&v) {
                    *o = f(c, x);
                }
            }
            ScanKind::Exclusive => {
                og[0] = c;
                for (o, &x) in og[1..].iter_mut().zip(&v[..W - 1]) {
                    *o = f(c, x);
                }
            }
        }
        *carry = f(c, v[W - 1]);
    }
    let mut c = *carry;
    for (o, &x) in outs.into_remainder().iter_mut().zip(groups.remainder()) {
        match kind {
            ScanKind::Inclusive => {
                c = f(c, x);
                *o = c;
            }
            ScanKind::Exclusive => {
                *o = c;
                c = f(c, x);
            }
        }
    }
    *carry = c;
}

/// The pinned-regrouping oracle for [`scan_block_network`]: same body, no
/// dispatch, spelled out for property tests.
pub fn scan_block_network_reference<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut Vec<T>,
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    let start = out.len();
    out.resize(start + block.len(), *carry);
    scan_block_network_body(carry, block, &mut out[start..], f, kind);
}

/// Block scan through a pinned [`SCAN_GROUP`]-wide Hillis–Steele prefix
/// network with a serial carry between groups, dispatched to the widest
/// detected ISA. Appends one output per element to `out`; leaves `carry`
/// as the (network-grouped) fold through the block.
///
/// For regrouping-invariant `f` the outputs equal the serial scan; for
/// floats they equal [`scan_block_network_reference`] on every ISA — the
/// per-group regrouping is part of the result's definition, pinned by
/// [`SCAN_GROUP`].
pub fn scan_block_network<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut Vec<T>,
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    let start = out.len();
    out.resize(start + block.len(), *carry);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    match isa_tier() {
        // SAFETY: the matching features were just detected at runtime.
        IsaTier::Avx512 => return unsafe { scan_block_network_avx512(carry, block, dst, f, kind) },
        // SAFETY: AVX2 was just detected at runtime.
        IsaTier::Avx2 => return unsafe { scan_block_network_avx2(carry, block, dst, f, kind) },
        IsaTier::Portable => {}
    }
    scan_block_network_body(carry, block, dst, f, kind)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn scan_block_network_avx2<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut [T],
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    scan_block_network_body(carry, block, out, f, kind)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq", enable = "avx512bw", enable = "avx512vl")]
fn scan_block_network_avx512<T: Copy>(
    carry: &mut T,
    block: &[T],
    out: &mut [T],
    f: impl Fn(T, T) -> T + Copy,
    kind: ScanKind,
) {
    scan_block_network_body(carry, block, out, f, kind)
}

// ---------------------------------------------------------------------------
// Bucketed counting (Histogram / Counts fast path)
// ---------------------------------------------------------------------------

/// Sub-histogram ways for [`count_into`]. Breaks the store-to-load
/// forwarding stall when consecutive elements land in the same bucket.
const COUNT_WAYS: usize = 4;
/// Largest table replicated per way (4 × 2048 × 8 B = 64 KiB of scratch).
const COUNT_MAX_REPLICATED: usize = 2048;
/// Minimum block size worth the scratch allocation and final fold.
const COUNT_MIN_BLOCK: usize = 4 * LANES;

/// Increments `counts[index_of(x)]` for every `x` in `block` — the
/// bucketed accumulate kernel under `Histogram`/`Counts`.
///
/// For small tables and large blocks the counts are kept in
/// [`COUNT_WAYS`] interleaved sub-tables (so a run of same-bucket inputs
/// does not serialize on one memory cell) and folded back with a
/// vectorized elementwise add. Counting is commutative integer addition,
/// so the result is bit-identical to the naive loop either way.
/// `index_of` is called once per element in input order — panics and
/// side effects happen exactly as in the scalar loop.
///
/// Does not tick the dispatch counters itself: it runs under
/// [`crate::op::accumulate_block`], which accounts for the block.
pub fn count_into<T>(counts: &mut [u64], block: &[T], index_of: impl Fn(&T) -> usize) {
    let k = counts.len();
    if k == 0 || k > COUNT_MAX_REPLICATED || block.len() < COUNT_MIN_BLOCK {
        for x in block {
            counts[index_of(x)] += 1;
        }
        return;
    }
    let mut sub = vec![0u64; (COUNT_WAYS - 1) * k];
    let mut quads = block.chunks_exact(COUNT_WAYS);
    for quad in &mut quads {
        // Way 0 is `counts` itself, ways 1.. are the scratch sub-tables.
        counts[index_of(&quad[0])] += 1;
        sub[index_of(&quad[1])] += 1;
        sub[k + index_of(&quad[2])] += 1;
        sub[2 * k + index_of(&quad[3])] += 1;
    }
    for x in quads.remainder() {
        counts[index_of(x)] += 1;
    }
    let (s1, rest) = sub.split_at(k);
    let (s2, s3) = rest.split_at(k);
    combine_elementwise_dispatch(counts, s1, |a, b| a + b);
    combine_elementwise_dispatch(counts, s2, |a, b| a + b);
    combine_elementwise_dispatch(counts, s3, |a, b| a + b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_block_integer_matches_serial_all_lengths() {
        for n in 0..(4 * LANES + 3) {
            let data: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 101 - 50).collect();
            let serial = data.iter().fold(0i64, |a, &b| a.wrapping_add(b));
            assert_eq!(fold_block(0i64, &data, |a, b| a.wrapping_add(b)), serial, "n={n}");
            assert_eq!(
                fold_block_reference(0i64, &data, |a, b| a.wrapping_add(b)),
                serial,
                "reference n={n}"
            );
        }
    }

    #[test]
    fn fold_block_float_matches_pinned_reference() {
        for n in 0..(4 * LANES + 3) {
            let data: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e3).collect();
            let kernel = fold_block(0.0f64, &data, |a, b| a + b);
            let reference = fold_block_reference(0.0f64, &data, |a, b| a + b);
            assert_eq!(kernel.to_bits(), reference.to_bits(), "n={n}");
        }
    }

    #[test]
    fn scan_serial_is_bit_identical_to_loop() {
        for n in 0..(4 * SCAN_GROUP + 3) {
            let data: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                let mut expect = Vec::new();
                let mut c = 0i64;
                for &x in &data {
                    match kind {
                        ScanKind::Inclusive => {
                            c += x;
                            expect.push(c);
                        }
                        ScanKind::Exclusive => {
                            expect.push(c);
                            c += x;
                        }
                    }
                }
                let mut out = Vec::new();
                let mut carry = 0i64;
                scan_block_serial(&mut carry, &data, &mut out, |a, b| a + b, kind);
                assert_eq!(out, expect, "n={n} kind={kind:?}");
                assert_eq!(carry, c, "carry n={n} kind={kind:?}");
            }
        }
    }

    #[test]
    fn scan_network_integer_matches_serial_and_float_matches_reference() {
        for n in 0..(4 * SCAN_GROUP + 3) {
            let di: Vec<i64> = (0..n as i64).map(|i| (i * 13) % 23 - 11).collect();
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                let mut serial = Vec::new();
                let mut cs = 0i64;
                scan_block_serial(&mut cs, &di, &mut serial, |a, b| a.wrapping_add(b), kind);
                let mut net = Vec::new();
                let mut cn = 0i64;
                scan_block_network(&mut cn, &di, &mut net, |a, b| a.wrapping_add(b), kind);
                assert_eq!(net, serial, "i64 n={n} kind={kind:?}");
                assert_eq!(cn, cs, "i64 carry n={n} kind={kind:?}");

                let df: Vec<f64> = di.iter().map(|&x| x as f64 / 3.0).collect();
                let mut reference = Vec::new();
                let mut cr = 0.0f64;
                scan_block_network_reference(&mut cr, &df, &mut reference, |a, b| a + b, kind);
                let mut kernel = Vec::new();
                let mut ck = 0.0f64;
                scan_block_network(&mut ck, &df, &mut kernel, |a, b| a + b, kind);
                let kb: Vec<u64> = kernel.iter().map(|x| x.to_bits()).collect();
                let rb: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
                assert_eq!(kb, rb, "f64 n={n} kind={kind:?}");
                assert_eq!(ck.to_bits(), cr.to_bits(), "f64 carry n={n} kind={kind:?}");
            }
        }
    }

    #[test]
    fn combine_elementwise_is_exact() {
        let mut a: Vec<f64> = (0..100).map(|i| i as f64 / 7.0).collect();
        let b: Vec<f64> = (0..100).map(|i| (i * i) as f64 / 11.0).collect();
        let expect: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        combine_elementwise(&mut a, &b, |x, y| x + y);
        assert_eq!(a, expect);
    }

    #[test]
    fn count_into_matches_naive_both_paths() {
        // Small block → scalar path; large block → interleaved path.
        for n in [7usize, 1000] {
            let data: Vec<usize> = (0..n).map(|i| (i * 7 + 1) % 13).collect();
            let mut naive = vec![0u64; 13];
            for &x in &data {
                naive[x] += 1;
            }
            let mut kernel = vec![0u64; 13];
            count_into(&mut kernel, &data, |&x| x);
            assert_eq!(kernel, naive, "n={n}");
        }
    }

    #[test]
    fn dispatch_counters_are_monotone() {
        let (k0, s0) = dispatch_counts();
        note_kernel_block();
        note_scalar_block();
        let (k1, s1) = dispatch_counts();
        assert!(k1 >= k0 + 1);
        assert!(s1 >= s0 + 1);
    }

    #[test]
    fn isa_tier_is_stable() {
        assert_eq!(isa_tier(), isa_tier());
    }
}
