//! Shared-memory engine: Listings 2 and 3 over virtual processors.
//!
//! Each virtual processor `q` owns a contiguous chunk of the input. The
//! reduce engine runs the accumulate phase in parallel and then combines
//! the per-chunk states along an in-order binary tree (log depth, valid for
//! any associative operator — commutative or not, adjacent-only combining
//! preserves set order). The scan engine is Listing 3 verbatim: parallel
//! accumulate, an exclusive scan over the `p` chunk states, then a parallel
//! rescan that interleaves `scan_gen` with `accum`.

use gv_executor::chunks::chunk_ranges;
use gv_executor::Pool;

use crate::op::{accumulate_block, rescan_block, ReduceScanOp, ScanKind};

/// Combines `states` (already in set order) pairwise along an in-order
/// binary tree until one state remains. Returns the identity for an empty
/// input.
///
/// Adjacent pairing means every `combine(earlier, later)` call respects set
/// order, so this is correct for non-commutative associative operators; the
/// tree shape mirrors what the message-passing layer does with log-depth
/// communication.
///
/// Runs in place over a single buffer by gap doubling: round `g` combines
/// slot `i` with slot `i + g` for `i ≡ 0 (mod 2g)`, so after the round slot
/// `i` holds the fold of original states `[i, min(i + 2g, n))`. That is
/// *exactly* the combine tree of per-level adjacent pairing (the order of
/// every `combine` call is identical — pinned by a unit test), without
/// allocating a fresh vector per level.
pub fn tree_combine<Op: ReduceScanOp + ?Sized>(op: &Op, states: Vec<Op::State>) -> Op::State {
    if states.is_empty() {
        return op.ident();
    }
    let mut slots: Vec<Option<Op::State>> = states.into_iter().map(Some).collect();
    let n = slots.len();
    let mut gap = 1;
    while gap < n {
        let mut i = 0;
        while i + gap < n {
            let right = slots[i + gap].take().expect("right slot filled");
            let left = slots[i].as_mut().expect("left slot filled");
            op.combine(left, right);
            i += 2 * gap;
        }
        gap *= 2;
    }
    slots[0].take().expect("root slot filled")
}

/// Runs the accumulate phase of Listing 2 in parallel: one state per chunk.
fn accumulate_phase<Op>(pool: &Pool, parts: usize, op: &Op, input: &[Op::In]) -> Vec<Op::State>
where
    Op: ReduceScanOp + Sync + ?Sized,
    Op::In: Sync,
    Op::State: Send,
{
    gv_executor::par_map_chunks(pool, input, parts, |_, chunk| {
        let mut state = op.ident();
        accumulate_block(op, &mut state, chunk);
        state
    })
}

/// Global-view parallel reduction (Listing 2) over `parts` virtual
/// processors scheduled on `pool`.
///
/// The result is identical to [`crate::seq::reduce`] for any associative
/// operator and any `parts ≥ 1`.
pub fn reduce<Op>(pool: &Pool, parts: usize, op: &Op, input: &[Op::In]) -> Op::Out
where
    Op: ReduceScanOp + Sync + ?Sized,
    Op::In: Sync,
    Op::State: Send,
{
    let states = accumulate_phase(pool, parts, op, input);
    op.red_gen(tree_combine(op, states))
}

/// Global-view parallel scan (Listing 3) over `parts` virtual processors
/// scheduled on `pool`.
///
/// `State: Clone` is needed because the exclusive scan over chunk states
/// keeps a running prefix while also handing each chunk its starting state
/// — exactly the `s_q` values of Listing 3 line 9.
pub fn scan<Op>(
    pool: &Pool,
    parts: usize,
    op: &Op,
    input: &[Op::In],
    kind: ScanKind,
) -> Vec<Op::Out>
where
    Op: ReduceScanOp + Sync + ?Sized,
    Op::In: Sync,
    Op::State: Clone + Send,
    Op::Out: Send,
{
    // Phase 1 (Listing 3 lines 1–8): per-chunk accumulate with hooks.
    let states = accumulate_phase(pool, parts, op, input);

    // Line 9: exclusive scan of the chunk states, in set order. `p` is
    // small, so this runs sequentially here; the message-passing engine
    // does the same step with a log-depth communication schedule.
    let mut chunk_prefixes = Vec::with_capacity(parts);
    let mut running = op.ident();
    for s in states {
        chunk_prefixes.push(running.clone());
        op.combine(&mut running, s);
    }

    // Phase 2 (lines 10–13): parallel rescan, each chunk starting from its
    // exclusive prefix state. Exclusive order is generate-then-accumulate;
    // inclusive interchanges the two lines, as the paper prescribes.
    let mut results: Vec<Option<Vec<Op::Out>>> = Vec::with_capacity(parts);
    results.resize_with(parts, || None);
    pool.scope(|scope| {
        for ((slot, range), prefix) in results
            .iter_mut()
            .zip(chunk_ranges(input.len(), parts))
            .zip(chunk_prefixes)
        {
            let chunk = &input[range];
            scope.spawn(move || {
                let mut state = prefix;
                let mut out = Vec::with_capacity(chunk.len());
                rescan_block(op, &mut state, chunk, kind, &mut out);
                *slot = Some(out);
            });
        }
    });

    let mut out = Vec::with_capacity(input.len());
    for piece in results {
        out.extend(piece.expect("scan chunk produced no output"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{Monoid, MonoidOp};
    use crate::seq;

    struct Add;
    impl Monoid for Add {
        type T = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn combine(&self, a: &mut i64, b: &i64) {
            *a += *b;
        }
    }

    struct Concat;
    impl Monoid for Concat {
        type T = String;
        const COMMUTATIVE: bool = false;
        fn identity(&self) -> String {
            String::new()
        }
        fn combine(&self, a: &mut String, b: &String) {
            a.push_str(b);
        }
    }

    #[test]
    fn tree_combine_of_nothing_is_identity() {
        let op = MonoidOp(Add);
        assert_eq!(tree_combine(&op, vec![]), 0);
    }

    #[test]
    fn tree_combine_preserves_order() {
        let op = MonoidOp(Concat);
        for n in 1..=9 {
            let states: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            let expected: String = states.concat();
            assert_eq!(tree_combine(&op, states), expected, "n={n}");
        }
    }

    /// Fully parenthesizing combine pins not just the *order* but the
    /// exact grouping of the combine tree. This shape is a semantic
    /// contract for float operators (regrouping changes rounding): the
    /// in-place gap-doubling walk must keep producing the adjacent-pairing
    /// tree of the original per-level implementation.
    struct Paren;
    impl Monoid for Paren {
        type T = String;
        const COMMUTATIVE: bool = false;
        fn identity(&self) -> String {
            String::new()
        }
        fn combine(&self, a: &mut String, b: &String) {
            *a = format!("({a}+{b})");
        }
    }

    #[test]
    fn tree_combine_grouping_is_pinned() {
        let op = MonoidOp(Paren);
        let tree = |n: usize| {
            let states: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            tree_combine(&op, states)
        };
        assert_eq!(tree(1), "0");
        assert_eq!(tree(2), "(0+1)");
        assert_eq!(tree(3), "((0+1)+2)");
        assert_eq!(tree(4), "((0+1)+(2+3))");
        assert_eq!(tree(5), "(((0+1)+(2+3))+4)");
        assert_eq!(tree(6), "(((0+1)+(2+3))+(4+5))");
        assert_eq!(tree(7), "(((0+1)+(2+3))+((4+5)+6))");
        assert_eq!(tree(8), "(((0+1)+(2+3))+((4+5)+(6+7)))");
        assert_eq!(tree(9), "((((0+1)+(2+3))+((4+5)+(6+7)))+8)");
    }

    #[test]
    fn parallel_reduce_matches_sequential_for_all_chunkings() {
        let pool = Pool::new(3);
        let op = MonoidOp(Add);
        let input: Vec<i64> = (0..257).map(|i| (i * 7) % 31 - 15).collect();
        let expected = seq::reduce(&op, &input);
        for parts in [1, 2, 3, 5, 8, 64, 300] {
            assert_eq!(reduce(&pool, parts, &op, &input), expected, "parts={parts}");
        }
    }

    #[test]
    fn parallel_noncommutative_reduce_matches_sequential() {
        let pool = Pool::new(4);
        let op = MonoidOp(Concat);
        let input: Vec<String> = (0..41).map(|i| format!("<{i}>")).collect();
        let expected = seq::reduce(&op, &input);
        for parts in [1, 2, 3, 7, 41, 100] {
            assert_eq!(reduce(&pool, parts, &op, &input), expected, "parts={parts}");
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_for_all_chunkings() {
        let pool = Pool::new(3);
        let op = MonoidOp(Add);
        let input: Vec<i64> = (0..130).map(|i| (i * 13) % 17 - 8).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let expected = seq::scan(&op, &input, kind);
            for parts in [1, 2, 4, 9, 130, 200] {
                assert_eq!(
                    scan(&pool, parts, &op, &input, kind),
                    expected,
                    "parts={parts} kind={kind:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_noncommutative_scan_matches_sequential() {
        let pool = Pool::new(2);
        let op = MonoidOp(Concat);
        let input: Vec<String> = "abcdefghij".chars().map(String::from).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let expected = seq::scan(&op, &input, kind);
            for parts in [1, 3, 10, 12] {
                assert_eq!(scan(&pool, parts, &op, &input, kind), expected);
            }
        }
    }

    #[test]
    fn empty_input_parallel() {
        let pool = Pool::new(2);
        let op = MonoidOp(Add);
        assert_eq!(reduce(&pool, 4, &op, &[]), 0);
        assert!(scan(&pool, 4, &op, &[], ScanKind::Inclusive).is_empty());
    }
}
