//! Aggregation: many reductions/scans computed simultaneously (paper §2.1).
//!
//! "Aggregation … allows the programmer to compute multiple reductions
//! simultaneously, thus saving the overhead of many smaller messages."
//!
//! The data model is a sequence of *rows*, each row holding one input
//! element per *slot* (the same slot count in every row). Slot `j` across
//! all rows forms an independent ordered set; an aggregated reduction
//! reduces every slot at once. The paper's example — the element-wise
//! minimums of per-processor integer arrays — is `reduce_elementwise` with
//! the `min` operator; the paper also notes the aggregation of *user*
//! operators ("the mink reduction can itself be aggregated"), which works
//! here unchanged because the functions are applied per slot.
//!
//! In this crate the benefit is expressed purely as data layout; the
//! message-batching benefit the paper measures lives in the message-passing
//! layer (`gv_rsmpi::agg`), which ships all slot states in one message.

use crate::op::{ReduceScanOp, ScanKind};

/// Asserts all rows have the same width and returns it (0 when `rows` is
/// empty).
fn row_width<T>(rows: &[&[T]]) -> usize {
    let width = rows.first().map_or(0, |r| r.len());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            width,
            "aggregated rows must have equal widths (row {i} has {} slots, expected {width})",
            row.len()
        );
    }
    width
}

/// Accumulates all rows into one state per slot, applying the pre/post
/// hooks on the first/last row exactly as `accumulate_block` does for a
/// single reduction.
pub fn accumulate_rows<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    states: &mut [Op::State],
    rows: &[&[Op::In]],
) {
    let width = row_width(rows);
    assert_eq!(
        states.len(),
        width,
        "state count must equal the row width"
    );
    let (Some(first), Some(last)) = (rows.first(), rows.last()) else {
        return;
    };
    for (s, x) in states.iter_mut().zip(first.iter()) {
        op.pre_accum(s, x);
    }
    for row in rows {
        op.accum_slots(states, row);
    }
    for (s, x) in states.iter_mut().zip(last.iter()) {
        op.post_accum(s, x);
    }
}

/// Element-wise aggregated reduction: reduces slot `j` of every row down to
/// output `j`.
pub fn reduce_elementwise<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    rows: &[&[Op::In]],
) -> Vec<Op::Out> {
    let width = row_width(rows);
    let mut states: Vec<Op::State> = (0..width).map(|_| op.ident()).collect();
    accumulate_rows(op, &mut states, rows);
    states.into_iter().map(|s| op.red_gen(s)).collect()
}

/// Element-wise aggregated scan: output row `i`, slot `j` is the scan of
/// slot `j` over rows `0..=i` (inclusive) or `0..i` (exclusive).
pub fn scan_elementwise<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    rows: &[&[Op::In]],
    kind: ScanKind,
) -> Vec<Vec<Op::Out>> {
    let width = row_width(rows);
    let mut states: Vec<Op::State> = (0..width).map(|_| op.ident()).collect();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut out_row = Vec::with_capacity(width);
        for (s, x) in states.iter_mut().zip(row.iter()) {
            match kind {
                ScanKind::Exclusive => {
                    out_row.push(op.scan_gen(s, x));
                    op.accum(s, x);
                }
                ScanKind::Inclusive => {
                    op.accum(s, x);
                    out_row.push(op.scan_gen(s, x));
                }
            }
        }
        out.push(out_row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{Monoid, MonoidOp};
    use crate::seq;

    struct Min;
    impl Monoid for Min {
        type T = i32;
        fn identity(&self) -> i32 {
            i32::MAX
        }
        fn combine(&self, a: &mut i32, b: &i32) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    #[test]
    fn elementwise_min_matches_paper_description() {
        // Paper §2.1: "the min reduction can be aggregated to compute the
        // element-wise minimums of the values in arrays of integers."
        let op = MonoidOp(Min);
        let rows: Vec<&[i32]> = vec![&[5, 1, 9], &[3, 4, 2], &[8, 0, 7]];
        assert_eq!(reduce_elementwise(&op, &rows), vec![3, 0, 2]);
    }

    #[test]
    fn aggregated_reduce_matches_per_slot_sequential() {
        let op = MonoidOp(Min);
        let data: Vec<Vec<i32>> = (0..6)
            .map(|r| (0..4).map(|c| ((r * 7 + c * 13) % 19) - 9).collect())
            .collect();
        let rows: Vec<&[i32]> = data.iter().map(|r| r.as_slice()).collect();
        let got = reduce_elementwise(&op, &rows);
        for slot in 0..4 {
            let column: Vec<i32> = data.iter().map(|r| r[slot]).collect();
            assert_eq!(got[slot], seq::reduce(&op, &column), "slot {slot}");
        }
    }

    #[test]
    fn aggregated_scan_matches_per_slot_sequential() {
        let op = MonoidOp(Min);
        let data: Vec<Vec<i32>> = (0..5)
            .map(|r| (0..3).map(|c| ((r * 5 + c * 11) % 17) - 8).collect())
            .collect();
        let rows: Vec<&[i32]> = data.iter().map(|r| r.as_slice()).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let got = scan_elementwise(&op, &rows, kind);
            for slot in 0..3 {
                let column: Vec<i32> = data.iter().map(|r| r[slot]).collect();
                let expected = seq::scan(&op, &column, kind);
                let got_column: Vec<i32> = got.iter().map(|r| r[slot]).collect();
                assert_eq!(got_column, expected, "slot {slot} kind {kind:?}");
            }
        }
    }

    #[test]
    fn empty_rows_yield_identity_outputs() {
        let op = MonoidOp(Min);
        let rows: Vec<&[i32]> = vec![];
        assert!(reduce_elementwise(&op, &rows).is_empty());
        assert!(scan_elementwise(&op, &rows, ScanKind::Inclusive).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn ragged_rows_panic() {
        let op = MonoidOp(Min);
        let rows: Vec<&[i32]> = vec![&[1, 2], &[3]];
        reduce_elementwise(&op, &rows);
    }
}
