//! A `mean/variance` operator: single-pass streaming moments with a
//! numerically stable parallel merge.
//!
//! Not in the paper's listings, but exactly the kind of operator its
//! abstraction exists for: the input type (`f64`), state type (count,
//! mean, M2) and output type ([`Moments`]) are all different, and the
//! combine function (Chan et al.'s pairwise merge) is genuinely distinct
//! from the accumulate function (Welford's update) — the situation the
//! paper notes the older ZPL overloading approach could not express.

use crate::op::ReduceScanOp;

/// Accumulated moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MomentState {
    /// Number of samples.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (M2).
    pub m2: f64,
}

/// Result of a [`MeanVar`] reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of samples.
    pub count: u64,
    /// Sample mean (0 for an empty input).
    pub mean: f64,
    /// Population variance (0 for fewer than two samples).
    pub variance: f64,
}

impl Moments {
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Streaming mean and variance over `f64` samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanVar;

impl ReduceScanOp for MeanVar {
    type In = f64;
    type State = MomentState;
    type Out = Moments;

    fn ident(&self) -> MomentState {
        MomentState::default()
    }

    fn accum(&self, state: &mut MomentState, x: &f64) {
        // Welford's update.
        state.count += 1;
        let delta = *x - state.mean;
        state.mean += delta / state.count as f64;
        let delta2 = *x - state.mean;
        state.m2 += delta * delta2;
    }

    fn combine(&self, earlier: &mut MomentState, later: MomentState) {
        // Chan/Golub/LeVeque pairwise merge.
        if later.count == 0 {
            return;
        }
        if earlier.count == 0 {
            *earlier = later;
            return;
        }
        let n_a = earlier.count as f64;
        let n_b = later.count as f64;
        let n = n_a + n_b;
        let delta = later.mean - earlier.mean;
        earlier.mean += delta * n_b / n;
        earlier.m2 += later.m2 + delta * delta * n_a * n_b / n;
        earlier.count += later.count;
    }

    fn red_gen(&self, state: MomentState) -> Moments {
        Moments {
            count: state.count,
            mean: state.mean,
            variance: if state.count > 0 {
                state.m2 / state.count as f64
            } else {
                0.0
            },
        }
    }

    fn scan_gen(&self, state: &MomentState, _x: &f64) -> Moments {
        self.red_gen(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn moments_of_known_sample() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let got = seq::reduce(&MeanVar, &data);
        assert_eq!(got.count, 8);
        assert!(close(got.mean, 5.0));
        assert!(close(got.variance, 4.0));
        assert!(close(got.std_dev(), 2.0));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = seq::reduce(&MeanVar, &[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.variance, 0.0);
        let single = seq::reduce(&MeanVar, &[3.5]);
        assert_eq!(single.count, 1);
        assert!(close(single.mean, 3.5));
        assert!(close(single.variance, 0.0));
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64 / 7.0).collect();
        let expected = seq::reduce(&MeanVar, &data);
        for parts in [1, 2, 8, 64, 1000] {
            let got = crate::par::reduce(&pool, parts, &MeanVar, &data);
            assert_eq!(got.count, expected.count);
            assert!(close(got.mean, expected.mean), "parts={parts}");
            assert!(close(got.variance, expected.variance), "parts={parts}");
        }
    }

    #[test]
    fn inclusive_scan_gives_prefix_moments() {
        let data = [1.0, 2.0, 3.0];
        let got = seq::scan(&MeanVar, &data, ScanKind::Inclusive);
        assert_eq!(got[0].count, 1);
        assert!(close(got[1].mean, 1.5));
        assert_eq!(got[2].count, 3);
        assert!(close(got[2].mean, 2.0));
        assert!(close(got[2].variance, 2.0 / 3.0));
    }
}
