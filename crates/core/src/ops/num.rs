//! Minimal numeric capability traits for the built-in operators.
//!
//! The standard library has no stable `Zero`/`One`/`Bounded` traits and the
//! allowed dependency set excludes `num-traits`, so the few capabilities
//! the 12 MPI built-ins need are defined here and implemented by macro for
//! the primitive types.

/// Types with additive and multiplicative identities and the corresponding
/// closed operations. Floats qualify; note that their addition is not
/// associative, so parallel sums of floats are deterministic for a *fixed*
/// decomposition but may differ across decompositions (same caveat as MPI).
pub trait Num: Copy + PartialOrd + std::fmt::Debug {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Whether `add`/`mul` are invariant under regrouping (associative in
    /// the bit-exact sense). True for the wrapping integer ops, false for
    /// floats — the built-in scan kernels use this to pick between the
    /// serial-order slice kernel (bit-identical, and the faster choice for
    /// latency-1 integer chains) and the pinned prefix-network regrouping
    /// of [`crate::kernel`] (the faster choice for high-latency float
    /// chains).
    const REGROUP_EXACT: bool = false;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Subtraction (the inverse of `add`; wrapping for integers).
    fn sub(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
}

/// Types with least and greatest values, used as identities for `min`/`max`
/// (and by the paper's `in_t.max` / `in_t.min` idiom in Listings 4, 5, 7).
pub trait Bounded: Copy + PartialOrd + std::fmt::Debug {
    /// Least value of the type.
    const MIN_VALUE: Self;
    /// Greatest value of the type.
    const MAX_VALUE: Self;
    /// Whether comparison-based selection (`min`/`max`) is invariant under
    /// regrouping in the bit-exact sense. True for totally-ordered integer
    /// types, false for floats (NaN and +0/−0 break associativity) — same
    /// role as [`Num::REGROUP_EXACT`] for the additive ops.
    const REGROUP_EXACT: bool = false;
}

/// Integer types supporting the MPI bit-wise reduction operators.
pub trait Bits: Copy + Eq + std::fmt::Debug {
    /// All bits clear (identity of bit-or / bit-xor).
    const ALL_ZEROS: Self;
    /// All bits set (identity of bit-and).
    const ALL_ONES: Self;
    /// Bit-wise and.
    fn band(self, other: Self) -> Self;
    /// Bit-wise or.
    fn bor(self, other: Self) -> Self;
    /// Bit-wise xor.
    fn bxor(self, other: Self) -> Self;
}

macro_rules! impl_num_int {
    ($($t:ty),*) => {$(
        impl Num for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const REGROUP_EXACT: bool = true;
            #[inline]
            fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline]
            fn sub(self, other: Self) -> Self { self.wrapping_sub(other) }
            #[inline]
            fn mul(self, other: Self) -> Self { self.wrapping_mul(other) }
        }
        impl Bounded for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            const REGROUP_EXACT: bool = true;
        }
        impl Bits for $t {
            const ALL_ZEROS: Self = 0;
            const ALL_ONES: Self = !0;
            #[inline]
            fn band(self, other: Self) -> Self { self & other }
            #[inline]
            fn bor(self, other: Self) -> Self { self | other }
            #[inline]
            fn bxor(self, other: Self) -> Self { self ^ other }
        }
    )*};
}

impl_num_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

macro_rules! impl_num_float {
    ($($t:ty),*) => {$(
        impl Num for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
            #[inline]
            fn sub(self, other: Self) -> Self { self - other }
            #[inline]
            fn mul(self, other: Self) -> Self { self * other }
        }
        impl Bounded for $t {
            // For min/max identities the infinities are the true identities
            // (MIN/MAX finite values would be absorbing for inputs beyond
            // them, which cannot occur for finite inputs anyway, but the
            // infinities are also correct for infinite inputs).
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;
        }
    )*};
}

impl_num_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_identities() {
        assert_eq!(<i32 as Num>::ZERO.add(5), 5);
        assert_eq!(<i32 as Num>::ONE.mul(7), 7);
        assert_eq!(<u8 as Bits>::ALL_ONES, 0xff);
        assert_eq!(<u8 as Bits>::ALL_ONES.band(0x5a), 0x5a);
        assert_eq!(<u8 as Bits>::ALL_ZEROS.bor(0x5a), 0x5a);
        assert_eq!(<u8 as Bits>::ALL_ZEROS.bxor(0x5a), 0x5a);
    }

    #[test]
    fn float_bounds_are_identities_for_min_max() {
        const { assert!(<f64 as Bounded>::MAX_VALUE > 1e308) };
        const { assert!(<f64 as Bounded>::MIN_VALUE < -1e308) };
    }

    #[test]
    fn wrapping_semantics_for_integer_sum() {
        // Deterministic overflow behaviour regardless of build profile.
        assert_eq!(u8::MAX.add(1), 0);
    }
}
