//! The `sorted` operator (paper §3.1.4, Listings 7 and 8): is the ordered
//! set sorted (non-decreasing)?
//!
//! This is the paper's flagship **non-commutative** operator and the one
//! used in the NAS IS case study (§4.1). Two implementations live here:
//!
//! * [`Sorted`] — the recommended form. Its state carries
//!   `Option<(first, last)>` bounds, so the identity is a true identity and
//!   the combine performs the boundary check even when empty states sit
//!   between non-empty ones.
//! * [`SortedPaperExact`] — a literal transcription of Listing 7, with
//!   `first = in_t.max` / `last = in_t.min` sentinels. It is kept because it
//!   demonstrates a genuine subtlety in the paper's formulation: when an
//!   *empty* processor's identity state is combined between two non-empty
//!   neighbours, the sentinel `last = MIN` makes the subsequent boundary
//!   check `last <= s.first` vacuously true, silently skipping the
//!   cross-neighbour comparison. `[5], [], [3]` reduces to *sorted* under
//!   Listing 7's rules. The paper's usage is safe because every processor
//!   in the NAS runs holds data, but a general-purpose library cannot
//!   assume that; see `sorted_paper_exact_misses_empty_boundary` below and
//!   the note in DESIGN.md.

use crate::op::ReduceScanOp;
use crate::ops::num::Bounded;

/// State of the [`Sorted`] reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortedState<T> {
    /// Whether every run accumulated/combined so far was internally sorted
    /// and every adjacent boundary was in order.
    pub status: bool,
    /// `(first, last)` elements of the (concatenated) run; `None` for the
    /// identity of an empty run.
    pub bounds: Option<(T, T)>,
}

/// The `sorted` operator: reduces to `true` iff the ordered set is
/// non-decreasing. Non-commutative.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sorted<T>(std::marker::PhantomData<T>);

impl<T> Sorted<T> {
    /// Creates the operator.
    pub fn new() -> Self {
        Sorted(std::marker::PhantomData)
    }
}

impl<T> ReduceScanOp for Sorted<T>
where
    T: Copy + PartialOrd + std::fmt::Debug,
{
    type In = T;
    type State = SortedState<T>;
    type Out = bool;

    const COMMUTATIVE: bool = false;

    fn ident(&self) -> SortedState<T> {
        SortedState {
            status: true,
            bounds: None,
        }
    }

    /// Listing 7's `pre_accum` sets `first`; here it initializes both
    /// bounds from the first element.
    fn pre_accum(&self, state: &mut SortedState<T>, first: &T) {
        if state.bounds.is_none() {
            state.bounds = Some((*first, *first));
        }
    }

    fn accum(&self, state: &mut SortedState<T>, x: &T) {
        match &mut state.bounds {
            Some((_, last)) => {
                if *last > *x {
                    state.status = false;
                }
                *last = *x;
            }
            // Reached only when the engine skips pre_accum (e.g. the scan
            // rescan loop, Listing 3 lines 10–13): self-initialize.
            None => state.bounds = Some((*x, *x)),
        }
    }

    fn combine(&self, earlier: &mut SortedState<T>, later: SortedState<T>) {
        earlier.status = earlier.status && later.status;
        match (&mut earlier.bounds, later.bounds) {
            (Some((_, last)), Some((later_first, later_last))) => {
                if *last > later_first {
                    earlier.status = false;
                }
                *last = later_last;
            }
            (None, Some(bounds)) => earlier.bounds = Some(bounds),
            // Combining an empty later run changes nothing.
            (_, None) => {}
        }
    }

    fn red_gen(&self, state: SortedState<T>) -> bool {
        state.status
    }

    /// With an inclusive scan, position `i` reports whether the prefix
    /// `0..=i` is sorted.
    fn scan_gen(&self, state: &SortedState<T>, _x: &T) -> bool {
        state.status
    }
}

/// Literal transcription of paper Listing 7 (see the module docs for why
/// the library form [`Sorted`] is preferred).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortedPaperExact<T>(std::marker::PhantomData<T>);

impl<T> SortedPaperExact<T> {
    /// Creates the operator.
    pub fn new() -> Self {
        SortedPaperExact(std::marker::PhantomData)
    }
}

/// State of [`SortedPaperExact`]: Listing 7's three fields with their
/// sentinel initializers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortedPaperState<T> {
    /// `var status: boole = true;`
    pub status: bool,
    /// `var first: in_t = in_t.max;`
    pub first: T,
    /// `var last: in_t = in_t.min;`
    pub last: T,
}

impl<T> ReduceScanOp for SortedPaperExact<T>
where
    T: Bounded + std::fmt::Debug,
{
    type In = T;
    type State = SortedPaperState<T>;
    type Out = bool;

    const COMMUTATIVE: bool = false;

    fn ident(&self) -> SortedPaperState<T> {
        SortedPaperState {
            status: true,
            first: T::MAX_VALUE,
            last: T::MIN_VALUE,
        }
    }

    fn pre_accum(&self, state: &mut SortedPaperState<T>, first: &T) {
        state.first = *first;
    }

    fn accum(&self, state: &mut SortedPaperState<T>, x: &T) {
        if state.last > *x {
            state.status = false;
        }
        state.last = *x;
    }

    fn combine(&self, earlier: &mut SortedPaperState<T>, later: SortedPaperState<T>) {
        earlier.status = earlier.status && later.status && earlier.last <= later.first;
        earlier.last = later.last;
    }

    fn red_gen(&self, state: SortedPaperState<T>) -> bool {
        state.status
    }

    fn scan_gen(&self, state: &SortedPaperState<T>, _x: &T) -> bool {
        state.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{accumulate_block, ScanKind};
    use crate::seq;

    #[test]
    fn sorted_inputs_reduce_true() {
        assert!(seq::reduce(&Sorted::new(), &[1i32, 2, 2, 5, 9]));
        assert!(seq::reduce(&Sorted::new(), &[42i32]));
        assert!(seq::reduce(&Sorted::new(), &[] as &[i32]));
    }

    #[test]
    fn unsorted_inputs_reduce_false() {
        assert!(!seq::reduce(&Sorted::new(), &[1i32, 3, 2]));
        assert!(!seq::reduce(&Sorted::new(), &[2i32, 1]));
    }

    #[test]
    fn scan_reports_longest_sorted_prefix() {
        let got = seq::scan(&Sorted::new(), &[1i32, 2, 5, 4, 6], ScanKind::Inclusive);
        assert_eq!(got, vec![true, true, true, false, false]);
    }

    #[test]
    fn parallel_sorted_matches_sequential_for_all_chunkings() {
        let pool = gv_executor::Pool::new(2);
        let sorted: Vec<i64> = (0..200).collect();
        let mut unsorted = sorted.clone();
        unsorted.swap(117, 118);
        for parts in [1, 2, 3, 7, 50, 199, 200, 333] {
            assert!(crate::par::reduce(&pool, parts, &Sorted::new(), &sorted));
            assert!(
                !crate::par::reduce(&pool, parts, &Sorted::new(), &unsorted),
                "parts={parts}"
            );
        }
    }

    #[test]
    fn boundary_violation_between_chunks_is_detected() {
        // Each chunk internally sorted, but the boundary is not: the whole
        // point of tracking first/last.
        let pool = gv_executor::Pool::new(2);
        let data = [1i32, 2, 3, /* chunk boundary at 4 parts */ 0, 1, 2];
        assert!(!crate::par::reduce(&pool, 2, &Sorted::new(), &data));
    }

    #[test]
    fn library_sorted_handles_empty_middle_chunk() {
        // [5] ++ [] ++ [3] is not sorted, and the Option-based state sees it.
        let op = Sorted::new();
        let mut a = op.ident();
        accumulate_block(&op, &mut a, &[5i32]);
        let empty = op.ident();
        let mut c = op.ident();
        accumulate_block(&op, &mut c, &[3i32]);
        op.combine(&mut a, empty);
        op.combine(&mut a, c);
        assert!(!op.red_gen(a));
    }

    #[test]
    fn sorted_paper_exact_misses_empty_boundary() {
        // Documented divergence: Listing 7's sentinel identity loses the
        // boundary check across an empty processor. This test pins the
        // (incorrect) behaviour of the literal transcription.
        let op = SortedPaperExact::new();
        let mut a = op.ident();
        accumulate_block(&op, &mut a, &[5i32]);
        let empty = op.ident();
        let mut c = op.ident();
        accumulate_block(&op, &mut c, &[3i32]);
        op.combine(&mut a, empty);
        op.combine(&mut a, c);
        assert!(
            op.red_gen(a),
            "Listing 7 semantics: empty middle chunk hides the 5 > 3 boundary"
        );
    }

    #[test]
    fn sorted_paper_exact_agrees_on_nonempty_chunks() {
        // Where every chunk is non-empty (the paper's NAS usage), the two
        // forms agree.
        let pool = gv_executor::Pool::new(2);
        let sorted: Vec<i32> = (0..64).collect();
        let mut unsorted = sorted.clone();
        unsorted.swap(10, 40);
        for parts in [1, 2, 4, 8] {
            assert_eq!(
                crate::par::reduce(&pool, parts, &SortedPaperExact::new(), &sorted),
                crate::par::reduce(&pool, parts, &Sorted::new(), &sorted),
            );
            assert_eq!(
                crate::par::reduce(&pool, parts, &SortedPaperExact::new(), &unsorted),
                crate::par::reduce(&pool, parts, &Sorted::new(), &unsorted),
            );
        }
    }
}
