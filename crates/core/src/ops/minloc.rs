//! The `mini` / `maxi` operators (paper Listing 5): minimum (maximum) value
//! and its location.
//!
//! The paper's Chapel version takes tuples `(elt_t, integer)` built by an
//! array expression `[i in 1..n] (A(i), i)`; this version does the same
//! with `(T, L)` input pairs. Unlike the `MonoidOp`-based
//! [`crate::ops::builtin::minloc`] (the MPI built-in), the state here is an
//! `Option`, making the identity a *true* identity even when real input
//! values equal the type's extreme — one of the robustness improvements an
//! expressive state type buys (paper §3: the state type "may also be
//! different").

use std::marker::PhantomData;

use crate::op::ReduceScanOp;

/// Picks between two `(value, location)` candidates; `better` is a strict
/// comparison on values and ties go to the smaller location.
#[inline]
fn pick<T: Copy + PartialOrd, L: Copy + Ord>(
    current: &mut Option<(T, L)>,
    candidate: (T, L),
    better: impl Fn(&T, &T) -> bool,
) {
    match current {
        None => *current = Some(candidate),
        Some((v, l)) => {
            if better(&candidate.0, v) || (candidate.0 == *v && candidate.1 < *l) {
                *current = Some(candidate);
            }
        }
    }
}

macro_rules! locate_op {
    ($(#[$doc:meta])* $name:ident, $ctor:ident, $better:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name<T, L>(PhantomData<(T, L)>);

        impl<T, L> $name<T, L> {
            /// Creates the operator.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        #[doc = concat!("Convenience constructor for [`", stringify!($name), "`].")]
        pub fn $ctor<T, L>() -> $name<T, L> {
            $name(PhantomData)
        }

        impl<T, L> ReduceScanOp for $name<T, L>
        where
            T: Copy + PartialOrd + std::fmt::Debug,
            L: Copy + Ord + std::fmt::Debug,
        {
            type In = (T, L);
            type State = Option<(T, L)>;
            type Out = Option<(T, L)>;

            fn ident(&self) -> Self::State {
                None
            }

            fn accum(&self, state: &mut Self::State, x: &(T, L)) {
                pick(state, *x, $better);
            }

            fn combine(&self, earlier: &mut Self::State, later: Self::State) {
                if let Some(candidate) = later {
                    pick(earlier, candidate, $better);
                }
            }

            fn red_gen(&self, state: Self::State) -> Self::Out {
                state
            }

            fn scan_gen(&self, state: &Self::State, _x: &(T, L)) -> Self::Out {
                *state
            }
        }
    };
}

locate_op! {
    /// `mini`: the minimum value and its location (paper Listing 5).
    /// Returns `None` only for an empty input.
    MinI, mini, |a, b| a < b
}

locate_op! {
    /// `maxi`: the maximum value and its location.
    MaxI, maxi, |a, b| a > b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    /// Builds the paper's `[i in 1..n] (A(i), i)` array expression.
    fn with_locations(a: &[i64]) -> Vec<(i64, usize)> {
        a.iter().copied().zip(1..).collect()
    }

    #[test]
    fn mini_finds_value_and_location() {
        let a = [6i64, 7, 6, 3, 8, 2, 8, 4, 8, 3];
        let pairs = with_locations(&a);
        assert_eq!(seq::reduce(&mini(), &pairs), Some((2, 6)));
        assert_eq!(seq::reduce(&maxi(), &pairs), Some((8, 5)));
    }

    #[test]
    fn ties_break_to_first_location() {
        let pairs = vec![(3i32, 10u32), (3, 4), (3, 7)];
        assert_eq!(seq::reduce(&mini(), &pairs), Some((3, 4)));
        assert_eq!(seq::reduce(&maxi(), &pairs), Some((3, 4)));
    }

    #[test]
    fn empty_input_is_none() {
        let pairs: Vec<(i32, u32)> = vec![];
        assert_eq!(seq::reduce(&mini(), &pairs), None);
    }

    #[test]
    fn extreme_values_are_handled_correctly() {
        // The Option state means i64::MAX inputs are found (the MonoidOp
        // minloc built-in would conflate them with its identity).
        let pairs = vec![(i64::MAX, 1u32), (i64::MAX, 2)];
        assert_eq!(seq::reduce(&mini(), &pairs), Some((i64::MAX, 1)));
        assert_eq!(seq::reduce(&maxi(), &pairs), Some((i64::MAX, 1)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let a: Vec<i64> = (0..300).map(|i| ((i * 91) % 157) as i64).collect();
        let pairs = with_locations(&a);
        let op = mini();
        let expected = seq::reduce(&op, &pairs);
        for parts in [1, 3, 16, 300] {
            assert_eq!(crate::par::reduce(&pool, parts, &op, &pairs), expected);
        }
    }
}
