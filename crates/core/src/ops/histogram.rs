//! Value histograms over explicit bin edges — `counts` (Listing 6)
//! generalized from categorical bucket indices to real-valued data.
//!
//! Where [`crate::ops::counts::Counts`] takes pre-assigned bucket indices,
//! `Histogram` takes raw values and bins them against a sorted edge
//! vector, with underflow/overflow bins. The scan form ranks each value
//! within its bin, like the paper's particle example does for octants.

use crate::op::ReduceScanOp;
use crate::split::{split_vec_segments, unsplit_vec_segments, SplittableState};

/// Bin assignment for a value against sorted edges `e0 < e1 < … < e_{m-1}`:
/// bin 0 is `(-∞, e0)`, bin i is `[e_{i-1}, e_i)`, bin m is `[e_{m-1}, ∞)`.
#[inline]
fn bin_of(edges: &[f64], x: f64) -> usize {
    edges.partition_point(|&e| e <= x)
}

/// Bin assignment for evenly spaced edges: an arithmetic guess followed by
/// a fixup walk against the actual edges, so the result is *exactly*
/// [`bin_of`] (the guess only saves the binary search; rounding error in
/// the division cannot change the answer).
#[inline]
fn bin_of_uniform(edges: &[f64], lo: f64, step: f64, x: f64) -> usize {
    let m = edges.len();
    // Saturating float→int cast: NaN and -∞ land on 0, +∞ past m.
    let mut b = ((x - lo) / step + 1.0) as usize;
    if b > m {
        b = m;
    }
    // The edges are sorted, so these local adjustments converge on the
    // unique b with edges[..b] <= x < edges[b..] — the partition point.
    while b < m && edges[b] <= x {
        b += 1;
    }
    while b > 0 && edges[b - 1] > x {
        b -= 1;
    }
    b
}

/// Result of a [`Histogram`] reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCounts {
    /// Occupancy per bin, length `edges.len() + 1` (underflow bin first,
    /// overflow bin last).
    pub bins: Vec<u64>,
}

impl HistogramCounts {
    /// Total samples counted.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// The histogram operator.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    /// `(lo, step)` when the edges are known evenly spaced (built by
    /// [`Histogram::uniform`]); lets `accum_block` guess bins
    /// arithmetically instead of binary-searching.
    uniform: Option<(f64, f64)>,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing, finite bin
    /// edges (at least one).
    ///
    /// # Panics
    /// Panics on empty, non-finite or non-increasing edges.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "histogram edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges,
            uniform: None,
        }
    }

    /// Evenly spaced edges covering `[lo, hi]` with `bins` interior bins.
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo);
        let step = (hi - lo) / bins as f64;
        let mut h = Self::new((0..=bins).map(|i| lo + step * i as f64).collect());
        h.uniform = Some((lo, step));
        h
    }

    /// Number of bins, including the two open-ended ones.
    pub fn bin_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// The edge vector.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }
}

impl ReduceScanOp for Histogram {
    type In = f64;
    type State = Vec<u64>;
    /// Reduce yields the full histogram; the scan output at each position
    /// is that value's 1-based rank within its own bin (inclusive scan),
    /// mirroring Listing 6's distinct generate functions.
    type Out = HistogramCounts;

    fn ident(&self) -> Vec<u64> {
        vec![0; self.bin_count()]
    }

    fn accum(&self, state: &mut Vec<u64>, x: &f64) {
        state[bin_of(&self.edges, *x)] += 1;
    }

    fn accum_block(&self, state: &mut Vec<u64>, block: &[f64]) -> bool {
        match self.uniform {
            Some((lo, step)) => crate::kernel::count_into(state, block, |x| {
                bin_of_uniform(&self.edges, lo, step, *x)
            }),
            None => crate::kernel::count_into(state, block, |x| bin_of(&self.edges, *x)),
        }
        true
    }

    fn combine(&self, earlier: &mut Vec<u64>, later: Vec<u64>) {
        crate::kernel::combine_elementwise(earlier, &later, |a, b| a + b);
    }

    fn red_gen(&self, state: Vec<u64>) -> HistogramCounts {
        HistogramCounts { bins: state }
    }

    fn scan_gen(&self, state: &Vec<u64>, x: &f64) -> HistogramCounts {
        HistogramCounts {
            bins: vec![state[bin_of(&self.edges, *x)]],
        }
    }

    fn wire_size(&self, state: &Vec<u64>) -> usize {
        state.len() * std::mem::size_of::<u64>()
    }

    fn combine_ops(&self, incoming: &Vec<u64>) -> u64 {
        incoming.len() as u64
    }
}

/// Histograms combine element-wise, so contiguous bin ranges combine
/// independently: any chunking of the bin vector satisfies the
/// distributivity law. All ranks share the edge vector, hence equal
/// state lengths, hence aligned chunks.
impl SplittableState for Histogram {
    fn split_state(&self, state: Vec<u64>, parts: usize) -> Vec<Vec<u64>> {
        split_vec_segments(state, parts)
    }

    fn unsplit_state(&self, segments: Vec<Vec<u64>>) -> Vec<u64> {
        unsplit_vec_segments(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    #[test]
    fn bin_assignment_with_open_ends() {
        let edges = [0.0, 1.0, 2.0];
        assert_eq!(bin_of(&edges, -5.0), 0); // underflow
        assert_eq!(bin_of(&edges, 0.0), 1); // [0, 1)
        assert_eq!(bin_of(&edges, 0.99), 1);
        assert_eq!(bin_of(&edges, 1.0), 2); // [1, 2)
        assert_eq!(bin_of(&edges, 7.0), 3); // overflow
    }

    #[test]
    fn histogram_counts_known_data() {
        let h = Histogram::uniform(0.0, 10.0, 5); // edges 0,2,4,6,8,10
        let data = [-1.0, 0.5, 1.0, 3.3, 9.9, 10.0, 42.0];
        let got = seq::reduce(&h, &data);
        // underflow | [0,2) ×2 | [2,4) | [4,6) | [6,8) | [8,10) | overflow ×2
        assert_eq!(got.bins, vec![1, 2, 1, 0, 0, 1, 2]);
        assert_eq!(got.total(), data.len() as u64);
    }

    #[test]
    fn scan_ranks_within_bins() {
        let h = Histogram::new(vec![10.0]);
        // Bins: (<10) and (≥10); ranks within each.
        let data = [1.0, 20.0, 2.0, 30.0, 3.0];
        let got = seq::scan(&h, &data, ScanKind::Inclusive);
        let ranks: Vec<u64> = got.into_iter().map(|h| h.bins[0]).collect();
        assert_eq!(ranks, vec![1, 1, 2, 2, 3]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<f64> = (0..1000).map(|i| ((i * 193) % 777) as f64 / 7.0).collect();
        let h = Histogram::uniform(0.0, 111.0, 16);
        let expected = seq::reduce(&h, &data);
        for parts in [1, 4, 33] {
            assert_eq!(crate::par::reduce(&pool, parts, &h, &data), expected);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_panic() {
        Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn uniform_bin_guess_matches_binary_search() {
        let h = Histogram::uniform(-3.0, 5.0, 7);
        let (lo, step) = h.uniform.unwrap();
        let mut probes: Vec<f64> = vec![
            f64::NAN,
            f64::NEG_INFINITY,
            f64::INFINITY,
            -1e300,
            1e300,
            -3.0,
            5.0,
            4.999999999999999,
            -3.0000000000000004,
        ];
        probes.extend(h.edges().to_vec());
        probes.extend((0..1000).map(|i| -4.0 + (i as f64) * 0.01));
        for x in probes {
            assert_eq!(
                bin_of_uniform(h.edges(), lo, step, x),
                bin_of(h.edges(), x),
                "uniform guess diverged at x = {x:?}"
            );
        }
    }

    #[test]
    fn block_accumulate_matches_scalar_accumulate() {
        // Long enough to take the replicated-table path in count_into.
        let data: Vec<f64> = (0..4096).map(|i| ((i * 37) % 1000) as f64 / 83.0).collect();
        for h in [Histogram::uniform(0.0, 12.0, 24), Histogram::new(vec![1.0, 2.0, 7.5])] {
            let mut kernel_state = h.ident();
            assert!(h.accum_block(&mut kernel_state, &data));
            let mut scalar_state = h.ident();
            for x in &data {
                h.accum(&mut scalar_state, x);
            }
            assert_eq!(kernel_state, scalar_state);
        }
    }
}
