//! Single-pass minimum *and* maximum — a small showcase of structured
//! state: one reduction replaces the two built-in calls an MPI program
//! would issue (the same economics as ZRAN3's forty-to-one collapse, in
//! miniature).

use crate::op::ReduceScanOp;

/// The `minmax` operator: reduces to `Some((min, max))`, `None` for empty
/// input.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMax<T>(std::marker::PhantomData<T>);

impl<T> MinMax<T> {
    /// Creates the operator.
    pub fn new() -> Self {
        MinMax(std::marker::PhantomData)
    }
}

/// Convenience constructor.
pub fn minmax<T>() -> MinMax<T> {
    MinMax::new()
}

impl<T> ReduceScanOp for MinMax<T>
where
    T: Copy + PartialOrd + std::fmt::Debug,
{
    type In = T;
    type State = Option<(T, T)>;
    type Out = Option<(T, T)>;

    fn ident(&self) -> Self::State {
        None
    }

    fn accum(&self, state: &mut Self::State, x: &T) {
        match state {
            None => *state = Some((*x, *x)),
            Some((lo, hi)) => {
                if *x < *lo {
                    *lo = *x;
                }
                if *x > *hi {
                    *hi = *x;
                }
            }
        }
    }

    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        if let Some((lo2, hi2)) = later {
            match earlier {
                None => *earlier = Some((lo2, hi2)),
                Some((lo, hi)) => {
                    if lo2 < *lo {
                        *lo = lo2;
                    }
                    if hi2 > *hi {
                        *hi = hi2;
                    }
                }
            }
        }
    }

    fn red_gen(&self, state: Self::State) -> Self::Out {
        state
    }

    fn scan_gen(&self, state: &Self::State, _x: &T) -> Self::Out {
        *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    #[test]
    fn finds_both_extremes_in_one_pass() {
        let data = [6i64, 7, 6, 3, 8, 2, 8, 4, 8, 3];
        assert_eq!(seq::reduce(&minmax(), &data), Some((2, 8)));
    }

    #[test]
    fn empty_is_none_singleton_is_self() {
        assert_eq!(seq::reduce(&minmax::<i32>(), &[]), None);
        assert_eq!(seq::reduce(&minmax(), &[42i32]), Some((42, 42)));
    }

    #[test]
    fn scan_tracks_running_envelope() {
        let data = [5i32, 2, 9, 3];
        let got = seq::scan(&minmax(), &data, ScanKind::Inclusive);
        assert_eq!(
            got,
            vec![Some((5, 5)), Some((2, 5)), Some((2, 9)), Some((2, 9))]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<i64> = (0..500).map(|i| (i * 97) % 389 - 200).collect();
        let expected = seq::reduce(&minmax(), &data);
        for parts in [1, 3, 16, 500, 600] {
            assert_eq!(crate::par::reduce(&pool, parts, &minmax(), &data), expected);
        }
    }

    #[test]
    fn works_for_floats_including_negatives() {
        let data = [0.5f64, -1.25, 3.75, 0.0];
        assert_eq!(seq::reduce(&minmax(), &data), Some((-1.25, 3.75)));
    }
}
