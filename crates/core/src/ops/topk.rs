//! The `TopBottomK` operator: the `k` largest *and* `k` smallest values
//! with their locations, in a single reduction.
//!
//! This is the operator the paper's NAS MG case study calls for (§4.2):
//! ZRAN3 needs "the ten largest numbers and their locations … along with
//! the ten smallest numbers and their locations", which the reference
//! F+MPI code obtains with *forty* built-in reductions and the F+RSMPI
//! version with "a single user-defined reduction, similar to the mink and
//! mini reductions".

use crate::op::ReduceScanOp;
use crate::split::{split_vec_segments, SplittableState};

/// One retained extremum: a value and where it was found.
pub type Entry<T, L> = (T, L);

/// State of a [`TopBottomK`] reduction: two best-first lists.
#[derive(Debug, Clone, PartialEq)]
pub struct TopBottomState<T, L> {
    /// The up-to-`k` largest entries, best (largest) first.
    pub top: Vec<Entry<T, L>>,
    /// The up-to-`k` smallest entries, best (smallest) first.
    pub bottom: Vec<Entry<T, L>>,
}

/// Result of a [`TopBottomK`] reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct TopBottom<T, L> {
    /// The `k` largest entries in descending value order.
    pub largest: Vec<Entry<T, L>>,
    /// The `k` smallest entries in ascending value order.
    pub smallest: Vec<Entry<T, L>>,
}

/// The `TopBottomK` operator over `(value, location)` pairs.
///
/// Tie-breaking is deterministic: equal values prefer the smaller
/// location, so results are independent of the processor decomposition.
#[derive(Debug, Clone, Copy)]
pub struct TopBottomK<T, L> {
    k: usize,
    _marker: std::marker::PhantomData<(T, L)>,
}

impl<T, L> TopBottomK<T, L> {
    /// Creates the operator retaining `k ≥ 1` extrema on each side.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "TopBottomK needs k >= 1");
        TopBottomK {
            k,
            _marker: std::marker::PhantomData,
        }
    }

    /// The number of extrema kept per side.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Orders entries for the `top` list: larger values first, then smaller
/// locations.
#[inline]
fn top_precedes<T: PartialOrd, L: Ord>(a: &Entry<T, L>, b: &Entry<T, L>) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Orders entries for the `bottom` list: smaller values first, then smaller
/// locations.
#[inline]
fn bottom_precedes<T: PartialOrd, L: Ord>(a: &Entry<T, L>, b: &Entry<T, L>) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Inserts `x` into the best-first list `list` (capacity `k`), keeping it
/// sorted by `precedes`.
#[inline]
fn insert_best_first<T: Copy, L: Copy>(
    list: &mut Vec<Entry<T, L>>,
    k: usize,
    x: Entry<T, L>,
    precedes: impl Fn(&Entry<T, L>, &Entry<T, L>) -> bool,
) {
    if list.len() == k {
        // Full: x must beat the current worst (the tail).
        let worst = list.last().expect("k >= 1");
        if !precedes(&x, worst) {
            return;
        }
        list.pop();
    }
    let position = list
        .iter()
        .position(|e| precedes(&x, e))
        .unwrap_or(list.len());
    list.insert(position, x);
}

impl<T, L> ReduceScanOp for TopBottomK<T, L>
where
    T: Copy + PartialOrd + std::fmt::Debug,
    L: Copy + Ord + std::fmt::Debug,
{
    type In = (T, L);
    type State = TopBottomState<T, L>;
    type Out = TopBottom<T, L>;

    fn ident(&self) -> Self::State {
        TopBottomState {
            top: Vec::with_capacity(self.k),
            bottom: Vec::with_capacity(self.k),
        }
    }

    fn accum(&self, state: &mut Self::State, x: &(T, L)) {
        insert_best_first(&mut state.top, self.k, *x, top_precedes);
        insert_best_first(&mut state.bottom, self.k, *x, bottom_precedes);
    }

    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        for x in later.top {
            insert_best_first(&mut earlier.top, self.k, x, top_precedes);
        }
        for x in later.bottom {
            insert_best_first(&mut earlier.bottom, self.k, x, bottom_precedes);
        }
    }

    fn red_gen(&self, state: Self::State) -> Self::Out {
        TopBottom {
            largest: state.top,
            smallest: state.bottom,
        }
    }

    fn scan_gen(&self, state: &Self::State, _x: &(T, L)) -> Self::Out {
        TopBottom {
            largest: state.top.clone(),
            smallest: state.bottom.clone(),
        }
    }

    fn wire_size(&self, state: &Self::State) -> usize {
        (state.top.len() + state.bottom.len()) * std::mem::size_of::<Entry<T, L>>()
            + 2 * std::mem::size_of::<usize>()
    }

    fn combine_ops(&self, incoming: &Self::State) -> u64 {
        (incoming.top.len() + incoming.bottom.len()).max(1) as u64
    }
}

/// Top-k states split by chunking each best-first list: a global top-`k`
/// entry is beaten by at most `k − 1` entries *anywhere*, so it survives
/// the capped per-segment combine of whichever segment its chunk lands
/// in, and the merge-on-unsplit recovers the exact global lists (the
/// deterministic tie-break keeps the result canonical). Segment lengths
/// may differ across ranks — the combine never assumes alignment.
impl<T, L> SplittableState for TopBottomK<T, L>
where
    T: Copy + PartialOrd + std::fmt::Debug,
    L: Copy + Ord + std::fmt::Debug,
{
    fn split_state(&self, state: Self::State, parts: usize) -> Vec<Self::State> {
        let tops = split_vec_segments(state.top, parts);
        let bottoms = split_vec_segments(state.bottom, parts);
        tops.into_iter()
            .zip(bottoms)
            .map(|(top, bottom)| TopBottomState { top, bottom })
            .collect()
    }

    fn unsplit_state(&self, segments: Vec<Self::State>) -> Self::State {
        let mut whole = self.ident();
        for seg in segments {
            self.combine(&mut whole, seg);
        }
        whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    fn sample() -> Vec<(f64, u64)> {
        (0..100u64)
            .map(|i| ((((i * 193) % 101) as f64) / 101.0, i))
            .collect()
    }

    fn oracle(data: &[(f64, u64)], k: usize) -> TopBottom<f64, u64> {
        let mut asc = data.to_vec();
        asc.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let smallest = asc.iter().take(k).copied().collect();
        let mut desc = data.to_vec();
        desc.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let largest = desc.iter().take(k).copied().collect();
        TopBottom { largest, smallest }
    }

    #[test]
    fn matches_sort_oracle() {
        let data = sample();
        for k in [1usize, 3, 10] {
            let got = seq::reduce(&TopBottomK::new(k), &data);
            assert_eq!(got, oracle(&data, k), "k={k}");
        }
    }

    #[test]
    fn short_input_returns_partial_lists() {
        let data = vec![(2.0f64, 7u64), (5.0, 3)];
        let got = seq::reduce(&TopBottomK::new(10), &data);
        assert_eq!(got.largest, vec![(5.0, 3), (2.0, 7)]);
        assert_eq!(got.smallest, vec![(2.0, 7), (5.0, 3)]);
    }

    #[test]
    fn ties_prefer_smaller_location_regardless_of_order() {
        let mut data = vec![(1.0f64, 9u64), (1.0, 2), (1.0, 5)];
        let a = seq::reduce(&TopBottomK::new(2), &data);
        data.reverse();
        let b = seq::reduce(&TopBottomK::new(2), &data);
        assert_eq!(a, b);
        assert_eq!(a.largest, vec![(1.0, 2), (1.0, 5)]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data = sample();
        let op = TopBottomK::new(10);
        let expected = seq::reduce(&op, &data);
        for parts in [1, 2, 5, 16, 100, 128] {
            assert_eq!(crate::par::reduce(&pool, parts, &op, &data), expected);
        }
    }

    #[test]
    fn top_and_bottom_overlap_when_k_exceeds_n() {
        let data = vec![(3.0f64, 0u64), (1.0, 1), (2.0, 2)];
        let got = seq::reduce(&TopBottomK::new(5), &data);
        assert_eq!(got.largest.len(), 3);
        assert_eq!(got.smallest.len(), 3);
        assert_eq!(got.largest[0], (3.0, 0));
        assert_eq!(got.smallest[0], (1.0, 1));
    }
}
