//! Segmented scans: independent scans over flag-delimited segments, as one
//! operator.
//!
//! The paper's related work credits NESL (Blelloch) for demonstrating "how
//! effective this primitive can be" — the segmented scan is *the* NESL
//! primitive, and it is expressible as an ordinary (non-commutative)
//! user-defined operator in the global-view abstraction: the input is a
//! `(value, starts_segment)` pair and the state is the classic segmented
//! monoid `(value, seen_reset)`:
//!
//! ```text
//! (a, ra) ⊕ (b, rb) = if rb { (b, true) } else { (a ⊕ b, ra) }
//! ```
//!
//! An inclusive scan of this operator yields, at every position, the scan
//! of that position's own segment — with full parallel-prefix execution
//! across segment boundaries.

use crate::monoid::Monoid;
use crate::op::ReduceScanOp;

/// State of a segmented reduction: the combined suffix since the last
/// segment start, and whether the covered run contains a segment start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegState<T> {
    /// Combined value of the trailing segment fragment.
    pub value: T,
    /// Whether a segment boundary occurs inside the covered run.
    pub reset: bool,
}

/// Lifts a [`Monoid`] into its segmented form over `(value, flag)` pairs,
/// where `flag = true` starts a new segment at that element.
///
/// * `reduce` yields the combination of the **last** segment.
/// * An inclusive `scan` yields the running per-segment scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct Segmented<M>(pub M);

impl<M: Monoid> ReduceScanOp for Segmented<M>
where
    M::T: Clone,
{
    type In = (M::T, bool);
    type State = SegState<M::T>;
    type Out = M::T;

    // The segmented monoid is associative but never commutative.
    const COMMUTATIVE: bool = false;

    fn ident(&self) -> Self::State {
        SegState {
            value: self.0.identity(),
            reset: false,
        }
    }

    fn accum(&self, state: &mut Self::State, (x, starts): &Self::In) {
        if *starts {
            state.value = x.clone();
            state.reset = true;
        } else {
            self.0.combine(&mut state.value, x);
        }
    }

    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        if later.reset {
            earlier.value = later.value;
            earlier.reset = true;
        } else {
            self.0.combine(&mut earlier.value, &later.value);
        }
    }

    fn red_gen(&self, state: Self::State) -> M::T {
        state.value
    }

    fn scan_gen(&self, state: &Self::State, _x: &Self::In) -> M::T {
        state.value.clone()
    }
}

/// Convenience: attaches segment-start flags derived from a boundary
/// predicate over consecutive elements (a boundary before index `i` when
/// `pred(&data[i-1], &data[i])`; index 0 always starts a segment).
pub fn flag_segments<T: Clone>(
    data: &[T],
    pred: impl Fn(&T, &T) -> bool,
) -> Vec<(T, bool)> {
    data.iter()
        .enumerate()
        .map(|(i, x)| {
            let starts = i == 0 || pred(&data[i - 1], x);
            (x.clone(), starts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Monoid;
    use crate::op::ScanKind;
    use crate::ops::builtin::Sum;
    use crate::seq;

    fn seg_sum() -> Segmented<Sum<i64>> {
        Segmented(Sum::default())
    }

    /// [5, 1 | 2, 3, 4 | 10] — classic segmented-sum example.
    fn sample() -> Vec<(i64, bool)> {
        vec![
            (5, true),
            (1, false),
            (2, true),
            (3, false),
            (4, false),
            (10, true),
        ]
    }

    #[test]
    fn inclusive_scan_restarts_at_segment_boundaries() {
        let got = seq::scan(&seg_sum(), &sample(), ScanKind::Inclusive);
        assert_eq!(got, vec![5, 6, 2, 5, 9, 10]);
    }

    #[test]
    fn reduce_yields_last_segment_total() {
        assert_eq!(seq::reduce(&seg_sum(), &sample()), 10);
        let two_segments = vec![(1i64, true), (2, false), (3, true), (4, false)];
        assert_eq!(seq::reduce(&seg_sum(), &two_segments), 7);
    }

    #[test]
    fn parallel_segmented_scan_matches_sequential_for_all_chunkings() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<(i64, bool)> = (0..200)
            .map(|i| ((i * 31) % 17, i % 7 == 0))
            .collect();
        let expected = seq::scan(&seg_sum(), &data, ScanKind::Inclusive);
        for parts in [1, 2, 3, 8, 50, 200, 300] {
            assert_eq!(
                crate::par::scan(&pool, parts, &seg_sum(), &data, ScanKind::Inclusive),
                expected,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn segmented_monoid_is_associative() {
        // Exhaustive check over small state triples.
        let op = seg_sum();
        let states: Vec<SegState<i64>> = [
            (0, false),
            (3, false),
            (7, true),
            (-2, true),
        ]
        .iter()
        .map(|&(value, reset)| SegState { value, reset })
        .collect();
        for a in &states {
            for b in &states {
                for c in &states {
                    let mut left = *a;
                    op.combine(&mut left, *b);
                    op.combine(&mut left, *c);
                    let mut bc = *b;
                    op.combine(&mut bc, *c);
                    let mut right = *a;
                    op.combine(&mut right, bc);
                    assert_eq!(left, right, "a={a:?} b={b:?} c={c:?}");
                }
            }
        }
    }

    #[test]
    fn flag_segments_by_key_change() {
        // Group-by-key prefix sums: a new segment whenever the key changes.
        let keyed: Vec<(u8, i64)> = vec![(1, 10), (1, 20), (2, 1), (2, 2), (2, 3), (9, 7)];
        let flagged = flag_segments(&keyed, |a, b| a.0 != b.0);
        let input: Vec<(i64, bool)> = flagged.iter().map(|((_, v), s)| (*v, *s)).collect();
        let got = seq::scan(&seg_sum(), &input, ScanKind::Inclusive);
        assert_eq!(got, vec![10, 30, 1, 3, 6, 7]);
    }

    #[test]
    fn works_with_noncommutative_inner_monoid() {
        struct Concat;
        impl Monoid for Concat {
            type T = String;
            const COMMUTATIVE: bool = false;
            fn identity(&self) -> String {
                String::new()
            }
            fn combine(&self, a: &mut String, b: &String) {
                a.push_str(b);
            }
        }
        let op = Segmented(Concat);
        let data: Vec<(String, bool)> = [("a", true), ("b", false), ("c", true), ("d", false)]
            .iter()
            .map(|(s, f)| (s.to_string(), *f))
            .collect();
        let got = seq::scan(&op, &data, ScanKind::Inclusive);
        assert_eq!(got, vec!["a", "ab", "c", "cd"]);
    }
}
