//! `LongestRun` — length (and position) of the longest non-decreasing run.
//!
//! A classic divide-and-conquer state: each partial tracks its prefix run,
//! suffix run, best interior run and boundary elements, and the combine
//! stitches runs across the boundary. It generalizes the paper's `sorted`
//! operator (Listing 7): `sorted(A) ⇔ longest_run(A) == |A|`, and like
//! `sorted` it is non-commutative and needs the boundary elements — a
//! natural next entry for the operator library the paper envisions users
//! building.

use crate::op::ReduceScanOp;

/// State of a [`LongestRun`] reduction over a run of elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunState<T> {
    /// `(first_element, last_element, total_len, prefix_len, suffix_len,
    /// best_len, best_start)` — `None` for the empty run.
    pub inner: Option<RunInner<T>>,
}

/// Non-empty run bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunInner<T> {
    /// First element of the covered block.
    pub first: T,
    /// Last element of the covered block.
    pub last: T,
    /// Number of covered elements.
    pub total: u64,
    /// Length of the non-decreasing prefix.
    pub prefix: u64,
    /// Length of the non-decreasing suffix.
    pub suffix: u64,
    /// Length of the best run anywhere in the block.
    pub best: u64,
    /// Global offset (relative to the block start) of the best run.
    pub best_start: u64,
}

/// Result of a [`LongestRun`] reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongestRunResult {
    /// Length of the longest non-decreasing run (0 for empty input).
    pub len: u64,
    /// Start offset of that run within the reduced block.
    pub start: u64,
}

/// The `longest non-decreasing run` operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct LongestRun<T>(std::marker::PhantomData<T>);

impl<T> LongestRun<T> {
    /// Creates the operator.
    pub fn new() -> Self {
        LongestRun(std::marker::PhantomData)
    }
}

impl<T> ReduceScanOp for LongestRun<T>
where
    T: Copy + PartialOrd + std::fmt::Debug,
{
    type In = T;
    type State = RunState<T>;
    type Out = LongestRunResult;

    const COMMUTATIVE: bool = false;

    fn ident(&self) -> RunState<T> {
        RunState { inner: None }
    }

    fn accum(&self, state: &mut RunState<T>, x: &T) {
        match &mut state.inner {
            None => {
                state.inner = Some(RunInner {
                    first: *x,
                    last: *x,
                    total: 1,
                    prefix: 1,
                    suffix: 1,
                    best: 1,
                    best_start: 0,
                });
            }
            Some(r) => {
                let continues = r.last <= *x;
                r.total += 1;
                if continues {
                    r.suffix += 1;
                    if r.prefix == r.total - 1 {
                        r.prefix = r.total;
                    }
                } else {
                    r.suffix = 1;
                }
                if r.suffix > r.best {
                    r.best = r.suffix;
                    r.best_start = r.total - r.suffix;
                }
                r.last = *x;
            }
        }
    }

    fn combine(&self, earlier: &mut RunState<T>, later: RunState<T>) {
        let Some(b) = later.inner else { return };
        let Some(a) = &mut earlier.inner else {
            earlier.inner = Some(b);
            return;
        };
        let joins = a.last <= b.first;
        let bridged = if joins { a.suffix + b.prefix } else { 0 };
        // Longest wins; ties go to the earliest start (matching a serial
        // left-to-right search).
        let mut candidate = (a.best, a.best_start);
        for other in [
            (bridged, a.total - a.suffix),
            (b.best, a.total + b.best_start),
        ] {
            if other.0 > candidate.0 || (other.0 == candidate.0 && other.1 < candidate.1) {
                candidate = other;
            }
        }
        let (best, best_start) = candidate;
        let prefix = if a.prefix == a.total && joins {
            a.total + b.prefix
        } else {
            a.prefix
        };
        let suffix = if b.suffix == b.total && joins {
            b.total + a.suffix
        } else {
            b.suffix
        };
        *a = RunInner {
            first: a.first,
            last: b.last,
            total: a.total + b.total,
            prefix,
            suffix,
            best,
            best_start,
        };
    }

    fn red_gen(&self, state: RunState<T>) -> LongestRunResult {
        match state.inner {
            None => LongestRunResult { len: 0, start: 0 },
            Some(r) => LongestRunResult {
                len: r.best,
                start: r.best_start,
            },
        }
    }

    fn scan_gen(&self, state: &RunState<T>, _x: &T) -> LongestRunResult {
        match &state.inner {
            None => LongestRunResult { len: 0, start: 0 },
            Some(r) => LongestRunResult {
                len: r.best,
                start: r.best_start,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    /// Brute-force oracle: longest non-decreasing run and its first start.
    fn oracle(data: &[i64]) -> LongestRunResult {
        if data.is_empty() {
            return LongestRunResult { len: 0, start: 0 };
        }
        let (mut best, mut best_start) = (1u64, 0u64);
        let (mut cur, mut cur_start) = (1u64, 0u64);
        for i in 1..data.len() {
            if data[i - 1] <= data[i] {
                cur += 1;
            } else {
                cur = 1;
                cur_start = i as u64;
            }
            if cur > best {
                best = cur;
                best_start = cur_start;
            }
        }
        LongestRunResult {
            len: best,
            start: best_start,
        }
    }

    #[test]
    fn known_cases() {
        assert_eq!(
            seq::reduce(&LongestRun::new(), &[3i64, 1, 2, 2, 5, 0, 7]),
            LongestRunResult { len: 4, start: 1 }
        );
        assert_eq!(
            seq::reduce(&LongestRun::new(), &[] as &[i64]),
            LongestRunResult { len: 0, start: 0 }
        );
        assert_eq!(
            seq::reduce(&LongestRun::new(), &[9i64]),
            LongestRunResult { len: 1, start: 0 }
        );
    }

    #[test]
    fn fully_sorted_input_is_one_run() {
        let data: Vec<i64> = (0..50).collect();
        assert_eq!(
            seq::reduce(&LongestRun::new(), &data),
            LongestRunResult { len: 50, start: 0 }
        );
    }

    #[test]
    fn matches_oracle_on_pseudorandom_data() {
        for seed in 0..20u64 {
            let data: Vec<i64> = (0..97)
                .map(|i| ((i as u64).wrapping_mul(seed * 2 + 12345) % 13) as i64)
                .collect();
            assert_eq!(
                seq::reduce(&LongestRun::new(), &data),
                oracle(&data),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn chunking_invariant_for_all_decompositions() {
        let pool = gv_executor::Pool::new(2);
        for seed in 0..8u64 {
            let data: Vec<i64> = (0..143)
                .map(|i| ((i as u64).wrapping_mul(seed * 6 + 7) % 11) as i64)
                .collect();
            let expected = seq::reduce(&LongestRun::new(), &data);
            for parts in [1, 2, 3, 7, 50, 143, 200] {
                assert_eq!(
                    crate::par::reduce(&pool, parts, &LongestRun::new(), &data),
                    expected,
                    "seed={seed} parts={parts}"
                );
            }
        }
    }

    #[test]
    fn generalizes_sorted() {
        use crate::ops::sorted::Sorted;
        for seed in 0..10u64 {
            let data: Vec<i64> = (0..60)
                .map(|i| ((i as u64).wrapping_mul(seed + 3) % 40) as i64)
                .collect();
            let run = seq::reduce(&LongestRun::new(), &data);
            let sorted = seq::reduce(&Sorted::new(), &data);
            assert_eq!(sorted, run.len == data.len() as u64, "seed={seed}");
        }
    }
}
