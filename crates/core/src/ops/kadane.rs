//! `MaxSubarray` — the maximum-sum contiguous subarray (Kadane's problem)
//! as a global-view operator.
//!
//! The textbook mergeable state `(total, best_prefix, best_suffix, best)`
//! makes this a one-reduction problem on any engine — another
//! non-commutative, structured-state entry for the operator library, and
//! a standard demonstration that the abstraction reaches well beyond
//! arithmetic folds.

use crate::op::ReduceScanOp;

/// State of a [`MaxSubarray`] reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubarrayState {
    /// Sum of all covered elements.
    pub total: i64,
    /// Best sum of a prefix (possibly empty ⇒ 0).
    pub best_prefix: i64,
    /// Best sum of a suffix (possibly empty ⇒ 0).
    pub best_suffix: i64,
    /// Best sum of any contiguous (possibly empty) subarray.
    pub best: i64,
}

/// The maximum-subarray-sum operator over `i64` values. The empty
/// subarray is admitted, so the result is never negative (matching the
/// standard semiring formulation and keeping the identity exact).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSubarray;

impl ReduceScanOp for MaxSubarray {
    type In = i64;
    type State = SubarrayState;
    type Out = i64;

    const COMMUTATIVE: bool = false;

    fn ident(&self) -> SubarrayState {
        SubarrayState {
            total: 0,
            best_prefix: 0,
            best_suffix: 0,
            best: 0,
        }
    }

    fn accum(&self, s: &mut SubarrayState, x: &i64) {
        let x = *x;
        s.best_suffix = (s.best_suffix + x).max(0);
        s.total += x;
        s.best_prefix = s.best_prefix.max(s.total);
        s.best = s.best.max(s.best_suffix);
    }

    fn combine(&self, a: &mut SubarrayState, b: SubarrayState) {
        *a = SubarrayState {
            total: a.total + b.total,
            best_prefix: a.best_prefix.max(a.total + b.best_prefix),
            best_suffix: b.best_suffix.max(b.total + a.best_suffix),
            best: a.best.max(b.best).max(a.best_suffix + b.best_prefix),
        };
    }

    fn red_gen(&self, s: SubarrayState) -> i64 {
        s.best
    }

    fn scan_gen(&self, s: &SubarrayState, _x: &i64) -> i64 {
        s.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    /// O(n²) oracle (empty subarray admitted).
    fn oracle(data: &[i64]) -> i64 {
        let mut best = 0i64;
        for i in 0..data.len() {
            let mut sum = 0;
            for &x in &data[i..] {
                sum += x;
                best = best.max(sum);
            }
        }
        best
    }

    #[test]
    fn classic_example() {
        // The CLRS example: best is [4, −1, 2, 1] = 6.
        let data = [-2i64, 1, -3, 4, -1, 2, 1, -5, 4];
        assert_eq!(seq::reduce(&MaxSubarray, &data), 6);
    }

    #[test]
    fn all_negative_gives_empty_subarray() {
        assert_eq!(seq::reduce(&MaxSubarray, &[-5i64, -1, -9]), 0);
        assert_eq!(seq::reduce(&MaxSubarray, &[]), 0);
    }

    #[test]
    fn matches_oracle_on_pseudorandom_data() {
        for seed in 0..25u64 {
            let data: Vec<i64> = (0..80)
                .map(|i| (((i as u64).wrapping_mul(seed * 2 + 31)) % 21) as i64 - 10)
                .collect();
            assert_eq!(seq::reduce(&MaxSubarray, &data), oracle(&data), "seed={seed}");
        }
    }

    #[test]
    fn chunking_invariant() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<i64> = (0..200)
            .map(|i| ((i * 37) % 19) as i64 - 9)
            .collect();
        let expected = seq::reduce(&MaxSubarray, &data);
        for parts in [1, 2, 5, 16, 200, 256] {
            assert_eq!(
                crate::par::reduce(&pool, parts, &MaxSubarray, &data),
                expected,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn inclusive_scan_is_prefix_best() {
        let data = [2i64, -5, 3, 1];
        let got = seq::scan(&MaxSubarray, &data, ScanKind::Inclusive);
        // Best over [2]=2, [2,-5]=2, [2,-5,3]=3, [2,-5,3,1]=4.
        assert_eq!(got, vec![2, 2, 3, 4]);
    }
}
