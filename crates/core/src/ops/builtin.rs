//! The twelve MPI built-in reduction/scan operators (paper §2.2):
//! maximum, minimum, sum, product, logical and/or/xor, bit-wise and/or/xor,
//! and maximum/minimum value-and-location.
//!
//! Each is a [`Monoid`] (the degenerate global-view case) lifted via
//! [`MonoidOp`]; constructor functions at the bottom give call sites the
//! ergonomics of `reduce(&sum::<i64>(), &data)`.

use std::marker::PhantomData;

use crate::kernel;
use crate::monoid::{Monoid, MonoidOp};
use crate::op::ScanKind;
use crate::ops::num::{Bits, Bounded, Num};

/// Implements the three [`Monoid`] block-kernel hooks from a combine
/// closure: lane-fold accumulate, elementwise slice combine, and a scan
/// kernel chosen by `$exact`. Regrouping-exact closures (wrapping integer
/// sums, bitwise/boolean ops, integer min/max) scan through the
/// serial-order slice kernel: a latency-1 dependent chain already runs at
/// ~1 element/cycle, so serial order is both bit-identical to the scalar
/// loop *and* the fastest choice. Float closures (multi-cycle latency
/// chains) scan through the pinned prefix-network regrouping of
/// [`crate::kernel`] instead, which trades serial order for instruction
/// parallelism.
macro_rules! impl_monoid_kernels {
    ($f:expr, $exact:expr) => {
        fn combine_block(&self, a: &mut Self::T, block: &[Self::T]) -> bool {
            let folded = kernel::fold_block(self.identity(), block, $f);
            self.combine(a, &folded);
            true
        }
        fn combine_elementwise(&self, a: &mut [Self::T], b: &[Self::T]) -> bool {
            kernel::combine_elementwise(a, b, $f);
            true
        }
        fn scan_block(
            &self,
            carry: &mut Self::T,
            block: &[Self::T],
            out: &mut Vec<Self::T>,
            kind: ScanKind,
        ) -> bool {
            if $exact {
                kernel::scan_block_serial(carry, block, out, $f, kind);
            } else {
                kernel::scan_block_network(carry, block, out, $f, kind);
            }
            true
        }
    };
}

/// Sum (`MPI_SUM`). Integer sums wrap; float sums are subject to the usual
/// non-associativity caveat.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sum<T>(PhantomData<T>);

impl<T: Num> Monoid for Sum<T> {
    type T = T;
    fn identity(&self) -> T {
        T::ZERO
    }
    fn combine(&self, a: &mut T, b: &T) {
        *a = a.add(*b);
    }
    impl_monoid_kernels!(|x: T, y: T| x.add(y), T::REGROUP_EXACT);
}

impl<T: Num> crate::monoid::InvertibleMonoid for Sum<T> {
    fn uncombine(&self, a: &mut T, b: &T) {
        // Wrapping integer sums invert exactly; float sums invert up to
        // rounding (documented at the use sites).
        *a = a.sub(*b);
    }
}

/// Product (`MPI_PROD`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Prod<T>(PhantomData<T>);

impl<T: Num> Monoid for Prod<T> {
    type T = T;
    fn identity(&self) -> T {
        T::ONE
    }
    fn combine(&self, a: &mut T, b: &T) {
        *a = a.mul(*b);
    }
    impl_monoid_kernels!(|x: T, y: T| x.mul(y), T::REGROUP_EXACT);
}

/// Minimum (`MPI_MIN`). Identity is the type's greatest value, matching the
/// paper's `in_t.max` idiom.
#[derive(Debug, Default, Clone, Copy)]
pub struct Min<T>(PhantomData<T>);

impl<T: Bounded> Monoid for Min<T> {
    type T = T;
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
    fn combine(&self, a: &mut T, b: &T) {
        if *b < *a {
            *a = *b;
        }
    }
    // Integer min/max scans stay serial-order (regrouping-exact), so they
    // are bit-identical to the scalar loop for every input. Float min/max
    // use the network scan: selection never rounds, so that too is
    // bit-identical on totally-ordered data — the pinned regrouping is
    // observable only for NaN / mixed-zero inputs (module docs of
    // `crate::kernel`).
    impl_monoid_kernels!(|x: T, y: T| if y < x { y } else { x }, T::REGROUP_EXACT);
}

/// Maximum (`MPI_MAX`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Max<T>(PhantomData<T>);

impl<T: Bounded> Monoid for Max<T> {
    type T = T;
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
    fn combine(&self, a: &mut T, b: &T) {
        if *b > *a {
            *a = *b;
        }
    }
    impl_monoid_kernels!(|x: T, y: T| if y > x { y } else { x }, T::REGROUP_EXACT);
}

/// Logical and (`MPI_LAND`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LAnd;

impl Monoid for LAnd {
    type T = bool;
    fn identity(&self) -> bool {
        true
    }
    fn combine(&self, a: &mut bool, b: &bool) {
        *a = *a && *b;
    }
    // `&` on bool is value-identical to `&&`; the non-short-circuit form
    // vectorizes.
    impl_monoid_kernels!(|x: bool, y: bool| x & y, true);
}

/// Logical or (`MPI_LOR`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LOr;

impl Monoid for LOr {
    type T = bool;
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: &mut bool, b: &bool) {
        *a = *a || *b;
    }
    impl_monoid_kernels!(|x: bool, y: bool| x | y, true);
}

/// Logical xor (`MPI_LXOR`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LXor;

impl Monoid for LXor {
    type T = bool;
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: &mut bool, b: &bool) {
        *a = *a != *b;
    }
    impl_monoid_kernels!(|x: bool, y: bool| x ^ y, true);
}

/// Bit-wise and (`MPI_BAND`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BAnd<T>(PhantomData<T>);

impl<T: Bits> Monoid for BAnd<T> {
    type T = T;
    fn identity(&self) -> T {
        T::ALL_ONES
    }
    fn combine(&self, a: &mut T, b: &T) {
        *a = a.band(*b);
    }
    impl_monoid_kernels!(|x: T, y: T| x.band(y), true);
}

/// Bit-wise or (`MPI_BOR`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BOr<T>(PhantomData<T>);

impl<T: Bits> Monoid for BOr<T> {
    type T = T;
    fn identity(&self) -> T {
        T::ALL_ZEROS
    }
    fn combine(&self, a: &mut T, b: &T) {
        *a = a.bor(*b);
    }
    impl_monoid_kernels!(|x: T, y: T| x.bor(y), true);
}

/// Bit-wise xor (`MPI_BXOR`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BXor<T>(PhantomData<T>);

impl<T: Bits> Monoid for BXor<T> {
    type T = T;
    fn identity(&self) -> T {
        T::ALL_ZEROS
    }
    fn combine(&self, a: &mut T, b: &T) {
        *a = a.bxor(*b);
    }
    impl_monoid_kernels!(|x: T, y: T| x.bxor(y), true);
}

impl crate::monoid::InvertibleMonoid for LXor {
    fn uncombine(&self, a: &mut bool, b: &bool) {
        *a = *a != *b;
    }
}

impl<T: Bits> crate::monoid::InvertibleMonoid for BXor<T> {
    fn uncombine(&self, a: &mut T, b: &T) {
        *a = a.bxor(*b);
    }
}

/// Minimum value and location (`MPI_MINLOC`): the element is a
/// `(value, location)` pair; ties are broken toward the smaller location,
/// matching MPI's deterministic tie rule.
#[derive(Debug, Default, Clone, Copy)]
pub struct MinLoc<T, L>(PhantomData<(T, L)>);

impl<T: Bounded, L: Ord + Copy + Default + std::fmt::Debug> Monoid for MinLoc<T, L> {
    type T = (T, L);
    fn identity(&self) -> (T, L) {
        (T::MAX_VALUE, L::default())
    }
    fn combine(&self, a: &mut (T, L), b: &(T, L)) {
        if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
            *a = *b;
        }
    }
}

/// Maximum value and location (`MPI_MAXLOC`); ties toward the smaller
/// location.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxLoc<T, L>(PhantomData<(T, L)>);

impl<T: Bounded, L: Ord + Copy + Default + std::fmt::Debug> Monoid for MaxLoc<T, L> {
    type T = (T, L);
    fn identity(&self) -> (T, L) {
        (T::MIN_VALUE, L::default())
    }
    fn combine(&self, a: &mut (T, L), b: &(T, L)) {
        if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
            *a = *b;
        }
    }
}

macro_rules! constructor {
    ($(#[$doc:meta] $fn_name:ident, $monoid:ident, [$($g:ident),*];)*) => {$(
        #[$doc]
        pub fn $fn_name<$($g),*>() -> MonoidOp<$monoid<$($g),*>>
        where
            $monoid<$($g),*>: Monoid + Default,
        {
            MonoidOp($monoid::default())
        }
    )*};
}

constructor! {
    /// The sum operator as a ready-to-use [`crate::op::ReduceScanOp`].
    sum, Sum, [T];
    /// The product operator.
    prod, Prod, [T];
    /// The minimum operator.
    min, Min, [T];
    /// The maximum operator.
    max, Max, [T];
    /// The bit-wise and operator.
    band, BAnd, [T];
    /// The bit-wise or operator.
    bor, BOr, [T];
    /// The bit-wise xor operator.
    bxor, BXor, [T];
}

/// The logical-and operator.
pub fn land() -> MonoidOp<LAnd> {
    MonoidOp(LAnd)
}

/// The logical-or operator.
pub fn lor() -> MonoidOp<LOr> {
    MonoidOp(LOr)
}

/// The logical-xor operator.
pub fn lxor() -> MonoidOp<LXor> {
    MonoidOp(LXor)
}

/// The minimum-value-and-location operator over `(value, location)` pairs.
pub fn minloc<T, L>() -> MonoidOp<MinLoc<T, L>>
where
    MinLoc<T, L>: Monoid,
{
    MonoidOp(MinLoc(PhantomData))
}

/// The maximum-value-and-location operator over `(value, location)` pairs.
pub fn maxloc<T, L>() -> MonoidOp<MaxLoc<T, L>>
where
    MaxLoc<T, L>: Monoid,
{
    MonoidOp(MaxLoc(PhantomData))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    const PAPER_SET: [i64; 10] = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3];

    #[test]
    fn all_twelve_have_true_identities() {
        // x ⊕ ident == x and ident ⊕ x == x for a sample of values.
        fn check<M: Monoid>(m: &M, samples: &[M::T])
        where
            M::T: Clone + PartialEq + std::fmt::Debug,
        {
            for x in samples {
                let mut a = x.clone();
                m.combine(&mut a, &m.identity());
                assert_eq!(&a, x, "right identity failed");
                let mut b = m.identity();
                m.combine(&mut b, x);
                assert_eq!(&b, x, "left identity failed");
            }
        }
        check(&Sum::<i64>::default(), &[-3, 0, 7]);
        check(&Prod::<i64>::default(), &[-3, 0, 7]);
        check(&Min::<i64>::default(), &[i64::MIN, -3, 0, 7]);
        check(&Max::<i64>::default(), &[i64::MAX, -3, 0, 7]);
        check(&LAnd, &[true, false]);
        check(&LOr, &[true, false]);
        check(&LXor, &[true, false]);
        check(&BAnd::<u32>::default(), &[0, 0xdead_beef, u32::MAX]);
        check(&BOr::<u32>::default(), &[0, 0xdead_beef, u32::MAX]);
        check(&BXor::<u32>::default(), &[0, 0xdead_beef, u32::MAX]);
        check(&MinLoc::<i32, u32>::default(), &[(5, 2), (-1, 9)]);
        check(&MaxLoc::<i32, u32>::default(), &[(5, 2), (-1, 9)]);
    }

    #[test]
    fn builtin_reductions_on_paper_set() {
        assert_eq!(seq::reduce(&sum::<i64>(), &PAPER_SET), 55);
        assert_eq!(seq::reduce(&min::<i64>(), &PAPER_SET), 2);
        assert_eq!(seq::reduce(&max::<i64>(), &PAPER_SET), 8);
    }

    #[test]
    fn product_reduction() {
        assert_eq!(seq::reduce(&prod::<u64>(), &[1, 2, 3, 4]), 24);
        assert_eq!(seq::reduce(&prod::<u64>(), &[]), 1);
    }

    #[test]
    fn logical_ops() {
        assert!(seq::reduce(&land(), &[true, true, true]));
        assert!(!seq::reduce(&land(), &[true, false, true]));
        assert!(seq::reduce(&lor(), &[false, true, false]));
        assert!(!seq::reduce(&lor(), &[false, false]));
        assert!(seq::reduce(&lxor(), &[true, false, true, true]));
        assert!(!seq::reduce(&lxor(), &[true, true]));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(seq::reduce(&band::<u8>(), &[0b1110, 0b0111]), 0b0110);
        assert_eq!(seq::reduce(&bor::<u8>(), &[0b1000, 0b0011]), 0b1011);
        assert_eq!(seq::reduce(&bxor::<u8>(), &[0b1100, 0b1010]), 0b0110);
    }

    #[test]
    fn minloc_maxloc_with_tie_breaking() {
        let pairs: Vec<(i32, u32)> = vec![(4, 0), (1, 1), (9, 2), (1, 3), (9, 4)];
        assert_eq!(seq::reduce(&minloc::<i32, u32>(), &pairs), (1, 1));
        assert_eq!(seq::reduce(&maxloc::<i32, u32>(), &pairs), (9, 2));
    }

    #[test]
    fn max_scan_is_running_maximum() {
        let got = seq::scan(&max::<i64>(), &PAPER_SET, ScanKind::Inclusive);
        assert_eq!(got, vec![6, 7, 7, 7, 8, 8, 8, 8, 8, 8]);
    }

    #[test]
    fn exclusive_min_scan_starts_at_identity() {
        let got = seq::scan(&min::<i64>(), &[3, 1, 2], ScanKind::Exclusive);
        assert_eq!(got, vec![i64::MAX, 3, 1]);
    }
}
