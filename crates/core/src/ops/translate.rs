//! The "translate" formulation — the design alternative the paper rejects.
//!
//! Paper §3: "Alternative functions that *translate* the input values into
//! state values rather than *accumulate* the input values into state values
//! would result in worse performance."
//!
//! [`Translated`] wraps any operator and reroutes its accumulate function
//! through translation: each input element is first lifted into a fresh
//! state (`ident` + one `accum`) and then `combine`d onto the running
//! state. Results are identical by the accumulate/combine coherence law;
//! the cost is one identity construction plus one full state combine per
//! element — for `mink`, O(k) per element where direct accumulation is
//! O(1) in the common case. The `ablation_translate` bench (experiment
//! TXT-TRANSLATE) measures exactly this gap.

use crate::op::{ReduceScanOp, ScanKind};

/// Wraps an operator, replacing element accumulation with
/// translate-then-combine. Semantics are unchanged; performance is the
/// point (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Translated<Op>(pub Op);

impl<Op: ReduceScanOp> ReduceScanOp for Translated<Op> {
    type In = Op::In;
    type State = Op::State;
    type Out = Op::Out;

    const COMMUTATIVE: bool = Op::COMMUTATIVE;

    fn ident(&self) -> Self::State {
        self.0.ident()
    }

    fn pre_accum(&self, state: &mut Self::State, first: &Self::In) {
        self.0.pre_accum(state, first);
    }

    fn accum(&self, state: &mut Self::State, x: &Self::In) {
        // Translate: lift the single element into a state of its own …
        let mut lifted = self.0.ident();
        self.0.accum(&mut lifted, x);
        // … then pay a full combine to attach it.
        self.0.combine(state, lifted);
    }

    fn post_accum(&self, state: &mut Self::State, last: &Self::In) {
        self.0.post_accum(state, last);
    }

    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        self.0.combine(earlier, later);
    }

    fn red_gen(&self, state: Self::State) -> Self::Out {
        self.0.red_gen(state)
    }

    fn scan_gen(&self, state: &Self::State, x: &Self::In) -> Self::Out {
        self.0.scan_gen(state, x)
    }

    fn wire_size(&self, state: &Self::State) -> usize {
        self.0.wire_size(state)
    }
}

/// Sequential reduction via the translate formulation — a convenience for
/// the ablation bench.
pub fn reduce_translated<Op: ReduceScanOp>(op: &Op, input: &[Op::In]) -> Op::Out {
    crate::seq::reduce(&Translated(BorrowedOp(op)), input)
}

/// Sequential scan via the translate formulation.
pub fn scan_translated<Op: ReduceScanOp>(
    op: &Op,
    input: &[Op::In],
    kind: ScanKind,
) -> Vec<Op::Out> {
    crate::seq::scan(&Translated(BorrowedOp(op)), input, kind)
}

/// Adapter implementing an operator through a shared reference, so
/// [`Translated`] can wrap borrowed operators without cloning them.
#[derive(Debug, Clone, Copy)]
pub struct BorrowedOp<'a, Op: ?Sized>(pub &'a Op);

impl<Op: ReduceScanOp + ?Sized> ReduceScanOp for BorrowedOp<'_, Op> {
    type In = Op::In;
    type State = Op::State;
    type Out = Op::Out;

    const COMMUTATIVE: bool = Op::COMMUTATIVE;

    fn ident(&self) -> Self::State {
        self.0.ident()
    }
    fn pre_accum(&self, state: &mut Self::State, first: &Self::In) {
        self.0.pre_accum(state, first);
    }
    fn accum(&self, state: &mut Self::State, x: &Self::In) {
        self.0.accum(state, x);
    }
    fn post_accum(&self, state: &mut Self::State, last: &Self::In) {
        self.0.post_accum(state, last);
    }
    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        self.0.combine(earlier, later);
    }
    fn red_gen(&self, state: Self::State) -> Self::Out {
        self.0.red_gen(state)
    }
    fn scan_gen(&self, state: &Self::State, x: &Self::In) -> Self::Out {
        self.0.scan_gen(state, x)
    }
    fn wire_size(&self, state: &Self::State) -> usize {
        self.0.wire_size(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::builtin::sum;
    use crate::ops::mink::MinK;
    use crate::seq;

    #[test]
    fn translated_sum_matches_direct() {
        let data: Vec<i64> = (0..500).map(|i| (i * 31) % 97 - 48).collect();
        assert_eq!(
            reduce_translated(&sum::<i64>(), &data),
            seq::reduce(&sum::<i64>(), &data)
        );
    }

    #[test]
    fn translated_mink_matches_direct() {
        let data: Vec<i32> = (0..400).map(|i| (i * 53) % 389).collect();
        let op = MinK::<i32>::new(8);
        assert_eq!(reduce_translated(&op, &data), seq::reduce(&op, &data));
    }

    #[test]
    fn translated_scan_matches_direct() {
        let data: Vec<i64> = (0..50).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            assert_eq!(
                scan_translated(&sum::<i64>(), &data, kind),
                seq::scan(&sum::<i64>(), &data, kind)
            );
        }
    }

    #[test]
    fn translated_preserves_commutativity_flag() {
        use crate::ops::sorted::Sorted;
        const { assert!(!<Translated<Sorted<i32>> as ReduceScanOp>::COMMUTATIVE) };
    }

    #[test]
    fn translated_parallel_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<i64> = (0..300).collect();
        let op = Translated(sum::<i64>());
        assert_eq!(
            crate::par::reduce(&pool, 7, &op, &data),
            seq::reduce(&sum::<i64>(), &data)
        );
    }
}
