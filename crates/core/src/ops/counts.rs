//! The `counts` operator (paper §3.1.3, Listing 6): bucket occupancy counts
//! and within-bucket rankings.
//!
//! "Given a list of particles with locations in one of eight octants, a
//! reduction could determine how many particles are in each location. A
//! scan could determine a ranking of the particles within each octant."
//!
//! This operator is the paper's showcase for *distinct* generate functions:
//! the reduction generates the whole count vector (`red_gen`), while the
//! scan generates, at each position, only the count of that position's own
//! bucket (`scan_gen(x) = v[x]`) — with an inclusive scan that is exactly
//! the particle's 1-based rank within its bucket.

use crate::op::ReduceScanOp;
use crate::split::{split_vec_segments, unsplit_vec_segments, SplittableState};

/// The `counts` operator over bucket indices `0..k`.
#[derive(Debug, Clone, Copy)]
pub struct Counts {
    k: usize,
}

impl Counts {
    /// Creates a counts operator with `k ≥ 1` buckets. Inputs are 0-based
    /// bucket indices and must be `< k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "counts needs at least one bucket");
        Counts { k }
    }

    /// The number of buckets.
    pub fn buckets(&self) -> usize {
        self.k
    }
}

impl ReduceScanOp for Counts {
    type In = usize;
    type State = Vec<u64>;
    type Out = Vec<u64>;

    fn ident(&self) -> Vec<u64> {
        vec![0; self.k]
    }

    fn accum(&self, state: &mut Vec<u64>, x: &usize) {
        assert!(
            *x < self.k,
            "bucket index {x} out of range for {} buckets",
            self.k
        );
        state[*x] += 1;
    }

    fn accum_block(&self, state: &mut Vec<u64>, block: &[usize]) -> bool {
        // The closure runs in input order, so the out-of-range panic fires
        // on the same element (and with the same message) as `accum`.
        crate::kernel::count_into(state, block, |x| {
            assert!(
                *x < self.k,
                "bucket index {x} out of range for {} buckets",
                self.k
            );
            *x
        });
        true
    }

    fn combine(&self, earlier: &mut Vec<u64>, later: Vec<u64>) {
        crate::kernel::combine_elementwise(earlier, &later, |a, b| a + b);
    }

    fn red_gen(&self, state: Vec<u64>) -> Vec<u64> {
        state
    }

    /// Note the asymmetry with `red_gen`: the scan output at each position
    /// is a single count, not the whole vector (Listing 6 line 11–12).
    fn scan_gen(&self, state: &Vec<u64>, x: &usize) -> Vec<u64> {
        vec![state[*x]]
    }

    fn wire_size(&self, _state: &Vec<u64>) -> usize {
        self.k * std::mem::size_of::<u64>()
    }

    fn combine_ops(&self, _incoming: &Vec<u64>) -> u64 {
        self.k as u64
    }
}

/// Bucket counts combine element-wise, so contiguous bucket ranges
/// combine independently; every rank's state has length `k`, so chunks
/// align across ranks.
impl SplittableState for Counts {
    fn split_state(&self, state: Vec<u64>, parts: usize) -> Vec<Vec<u64>> {
        split_vec_segments(state, parts)
    }

    fn unsplit_state(&self, segments: Vec<Vec<u64>>) -> Vec<u64> {
        unsplit_vec_segments(segments)
    }
}

/// A rank-producing variant of [`Counts`] whose scan output type is a bare
/// `u64` rather than a one-element vector.
///
/// The paper gives `counts` different generate functions for reduce and
/// scan but a *single* output type per use; Rust's associated types force
/// one `Out` per operator, so this sibling operator exists for callers who
/// want rankings with the natural scalar type. Its reduce result is the
/// count of the *last* element's bucket.
#[derive(Debug, Clone, Copy)]
pub struct BucketRank {
    inner: Counts,
    /// Which bucket `red_gen` reports (scan callers ignore this).
    pub report_bucket: usize,
}

impl BucketRank {
    /// Creates the operator with `k` buckets; `red_gen` reports bucket 0.
    pub fn new(k: usize) -> Self {
        BucketRank {
            inner: Counts::new(k),
            report_bucket: 0,
        }
    }
}

impl ReduceScanOp for BucketRank {
    type In = usize;
    type State = Vec<u64>;
    type Out = u64;

    fn ident(&self) -> Vec<u64> {
        self.inner.ident()
    }

    fn accum(&self, state: &mut Vec<u64>, x: &usize) {
        self.inner.accum(state, x);
    }

    fn accum_block(&self, state: &mut Vec<u64>, block: &[usize]) -> bool {
        self.inner.accum_block(state, block)
    }

    fn combine(&self, earlier: &mut Vec<u64>, later: Vec<u64>) {
        self.inner.combine(earlier, later);
    }

    fn red_gen(&self, state: Vec<u64>) -> u64 {
        state[self.report_bucket]
    }

    fn scan_gen(&self, state: &Vec<u64>, x: &usize) -> u64 {
        state[*x]
    }

    fn wire_size(&self, state: &Vec<u64>) -> usize {
        self.inner.wire_size(state)
    }

    fn combine_ops(&self, incoming: &Vec<u64>) -> u64 {
        self.inner.combine_ops(incoming)
    }
}

/// Same state and combine as [`Counts`], so the same chunking applies.
impl SplittableState for BucketRank {
    fn split_state(&self, state: Vec<u64>, parts: usize) -> Vec<Vec<u64>> {
        split_vec_segments(state, parts)
    }

    fn unsplit_state(&self, segments: Vec<Vec<u64>>) -> Vec<u64> {
        unsplit_vec_segments(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    /// The paper's §3.1.3 particle example, converted to 0-based octants.
    fn paper_particles() -> Vec<usize> {
        [6, 7, 6, 3, 8, 2, 8, 4, 8, 3].iter().map(|&o| o - 1).collect()
    }

    #[test]
    fn paper_reduction_counts() {
        let got = seq::reduce(&Counts::new(8), &paper_particles());
        assert_eq!(got, vec![0, 1, 2, 1, 0, 2, 1, 3]);
    }

    #[test]
    fn paper_scan_rankings() {
        let got = seq::scan(&BucketRank::new(8), &paper_particles(), ScanKind::Inclusive);
        assert_eq!(got, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn counts_scan_gen_returns_single_count() {
        let got = seq::scan(&Counts::new(8), &paper_particles(), ScanKind::Inclusive);
        let flattened: Vec<u64> = got.into_iter().flatten().collect();
        assert_eq!(flattened, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn exclusive_scan_gives_zero_based_ranks() {
        let got = seq::scan(&BucketRank::new(8), &paper_particles(), ScanKind::Exclusive);
        assert_eq!(got, vec![0, 0, 1, 0, 0, 0, 1, 0, 2, 1]);
    }

    #[test]
    fn total_count_equals_input_length() {
        let particles = paper_particles();
        let counts = seq::reduce(&Counts::new(8), &particles);
        assert_eq!(counts.iter().sum::<u64>(), particles.len() as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bucket_panics() {
        seq::reduce(&Counts::new(4), &[0usize, 5]);
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let pool = gv_executor::Pool::new(2);
        let particles: Vec<usize> = (0..1000).map(|i| (i * 7 + 3) % 8).collect();
        let op = Counts::new(8);
        let expected = seq::reduce(&op, &particles);
        for parts in [1, 4, 9, 64] {
            assert_eq!(crate::par::reduce(&pool, parts, &op, &particles), expected);
        }
        let rank_op = BucketRank::new(8);
        let expected_ranks = seq::scan(&rank_op, &particles, ScanKind::Inclusive);
        for parts in [1, 4, 9, 64] {
            assert_eq!(
                crate::par::scan(&pool, parts, &rank_op, &particles, ScanKind::Inclusive),
                expected_ranks
            );
        }
    }
}
