//! The operator library: the 12 MPI built-ins (§2.2) and the paper's
//! user-defined operators, plus extensions.
//!
//! | Module | Operators | Paper reference |
//! |---|---|---|
//! | [`builtin`] | sum, prod, min, max, land/lor/lxor, band/bor/bxor, minloc/maxloc | §2.2 (MPI's twelve built-ins) |
//! | [`mink`] | `MinK`, `MaxK` | Listings 1 and 4 |
//! | [`minloc`] | `MinI`, `MaxI` | Listing 5 |
//! | [`counts`] | `Counts`, `BucketRank` | Listing 6 / §3.1.3 |
//! | [`histogram`] | `Histogram` over real bin edges | Listing 6 generalized |
//! | [`sorted`] | `Sorted`, `SortedPaperExact` | Listings 7 and 8 / §3.1.4 |
//! | [`topk`] | `TopBottomK` | §4.2 (NAS MG ZRAN3) |
//! | [`mod@minmax`] | `MinMax` | extension (two built-ins fused into one reduction) |
//! | [`runs`] | `LongestRun` | extension (generalizes Listing 7's `sorted`) |
//! | [`kadane`] | `MaxSubarray` | extension (classic mergeable-state showcase) |
//! | [`segmented`] | `Segmented<M>` segmented scans | related work (NESL/Blelloch) expressed as a user operator |
//! | [`stats`] | `MeanVar` | extension (distinct accumulate/combine showcase) |
//! | [`translate`] | `Translated` wrapper | §3 performance note (ablation TXT-TRANSLATE) |
//! | [`num`] | capability traits for the built-ins | — |

pub mod builtin;
pub mod counts;
pub mod histogram;
pub mod kadane;
pub mod mink;
pub mod minloc;
pub mod minmax;
pub mod num;
pub mod runs;
pub mod segmented;
pub mod sorted;
pub mod stats;
pub mod topk;
pub mod translate;

pub use builtin::{band, bor, bxor, land, lor, lxor, max, maxloc, min, minloc as minloc_builtin, prod, sum};
pub use counts::{BucketRank, Counts};
pub use histogram::{Histogram, HistogramCounts};
pub use kadane::MaxSubarray;
pub use mink::{KBest, MaxK, MinK};
pub use minloc::{maxi, mini, MaxI, MinI};
pub use minmax::{minmax, MinMax};
pub use runs::{LongestRun, LongestRunResult};
pub use segmented::{flag_segments, SegState, Segmented};
pub use sorted::{Sorted, SortedPaperExact, SortedState};
pub use stats::{MeanVar, Moments};
pub use topk::{TopBottom, TopBottomK, TopBottomState};
pub use translate::Translated;
