//! The `mink` / `maxk` operators (paper Listings 1 and 4): the `k` smallest
//! (or largest) values of the input.
//!
//! The state is a length-`k` vector ordered so that the *replaceable*
//! element — the worst of the current best `k` — sits at index 0, exactly
//! as in the paper's C and Chapel listings ("a vector of k elements in
//! sorted order from high to low" for `mink`). `accum` is the paper's
//! bubble insertion; `combine` accumulates the other state's elements, the
//! same trick as Listing 4 line 15–17.

use crate::op::ReduceScanOp;
use crate::ops::num::Bounded;

/// State of a [`MinK`]/[`MaxK`] reduction: the current best `k` values,
/// worst-first.
#[derive(Debug, Clone, PartialEq)]
pub struct KBest<T> {
    values: Vec<T>,
}

impl<T: Copy> KBest<T> {
    /// The retained values, worst-first (descending for `mink`, ascending
    /// for `maxk`) — the internal order of the paper's listings.
    pub fn worst_first(&self) -> &[T] {
        &self.values
    }

    /// The retained values sorted best-first (ascending for `mink`,
    /// descending for `maxk`).
    pub fn best_first(&self) -> Vec<T> {
        let mut v = self.values.clone();
        v.reverse();
        v
    }
}

/// The `mink` operator: reduces an ordered set of `T` to its `k` smallest
/// values. Output is the k values in ascending order (best first); slots
/// never filled by a real input remain at the identity `T::MAX_VALUE`.
#[derive(Debug, Clone, Copy)]
pub struct MinK<T> {
    k: usize,
    _elem: std::marker::PhantomData<T>,
}

impl<T> MinK<T> {
    /// Creates a `mink` operator retaining `k ≥ 1` values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "mink needs k >= 1");
        MinK { k, _elem: std::marker::PhantomData }
    }
}

/// The `maxk` operator: the `k` largest values, in descending order.
#[derive(Debug, Clone, Copy)]
pub struct MaxK<T> {
    k: usize,
    _elem: std::marker::PhantomData<T>,
}

impl<T> MaxK<T> {
    /// Creates a `maxk` operator retaining `k ≥ 1` values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "maxk needs k >= 1");
        MaxK { k, _elem: std::marker::PhantomData }
    }
}

/// Bubble insertion shared by both directions. `better(a, b)` answers "is
/// `a` strictly better than `b`?" (smaller for `mink`, larger for `maxk`).
/// The state invariant is worst-first order: `v[0]` is the worst retained
/// value, so a new element only enters by beating `v[0]`.
#[inline]
fn bubble_insert<T: Copy>(v: &mut [T], x: T, better: impl Fn(&T, &T) -> bool) {
    if better(&x, &v[0]) {
        v[0] = x;
        // Restore worst-first order by sifting the new value toward the
        // back while it is better than its successor (paper Listing 1
        // lines 12–17: `if (v2[j-1] < v2[j]) swap`).
        for j in 1..v.len() {
            if better(&v[j - 1], &v[j]) {
                v.swap(j - 1, j);
            } else {
                break;
            }
        }
    }
}

impl<T: Bounded> ReduceScanOp for MinK<T>
where
    T: Copy + PartialOrd,
{
    type In = T;
    type State = KBest<T>;
    type Out = Vec<T>;

    fn ident(&self) -> KBest<T> {
        KBest {
            values: vec![T::MAX_VALUE; self.k],
        }
    }

    fn accum(&self, state: &mut KBest<T>, x: &T) {
        bubble_insert(&mut state.values, *x, |a, b| a < b);
    }

    fn combine(&self, earlier: &mut KBest<T>, later: KBest<T>) {
        for x in later.values {
            self.accum(earlier, &x);
        }
    }

    fn red_gen(&self, state: KBest<T>) -> Vec<T> {
        state.best_first()
    }

    fn scan_gen(&self, state: &KBest<T>, _x: &T) -> Vec<T> {
        state.best_first()
    }

    fn wire_size(&self, _state: &KBest<T>) -> usize {
        self.k * std::mem::size_of::<T>()
    }

    fn combine_ops(&self, _incoming: &KBest<T>) -> u64 {
        // Combining replays the incoming k values through accumulation.
        self.k as u64
    }
}

impl<T: Bounded> ReduceScanOp for MaxK<T>
where
    T: Copy + PartialOrd,
{
    type In = T;
    type State = KBest<T>;
    type Out = Vec<T>;

    fn ident(&self) -> KBest<T> {
        KBest {
            values: vec![T::MIN_VALUE; self.k],
        }
    }

    fn accum(&self, state: &mut KBest<T>, x: &T) {
        bubble_insert(&mut state.values, *x, |a, b| a > b);
    }

    fn combine(&self, earlier: &mut KBest<T>, later: KBest<T>) {
        for x in later.values {
            self.accum(earlier, &x);
        }
    }

    fn red_gen(&self, state: KBest<T>) -> Vec<T> {
        state.best_first()
    }

    fn scan_gen(&self, state: &KBest<T>, _x: &T) -> Vec<T> {
        state.best_first()
    }

    fn wire_size(&self, _state: &KBest<T>) -> usize {
        self.k * std::mem::size_of::<T>()
    }

    fn combine_ops(&self, _incoming: &KBest<T>) -> u64 {
        // Combining replays the incoming k values through accumulation.
        self.k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ScanKind;
    use crate::seq;

    #[test]
    fn mink_on_paper_set() {
        let set: [i64; 10] = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3];
        assert_eq!(seq::reduce(&MinK::new(3), &set), vec![2, 3, 3]);
        assert_eq!(seq::reduce(&MaxK::new(3), &set), vec![8, 8, 8]);
    }

    #[test]
    fn mink_matches_sort_oracle() {
        let data: Vec<i32> = (0..200).map(|i| (i * 37 + 11) % 101 - 50).collect();
        for k in [1usize, 2, 5, 10, 50] {
            let got: Vec<i32> = seq::reduce(&MinK::new(k), &data);
            let mut oracle = data.clone();
            oracle.sort();
            oracle.truncate(k);
            assert_eq!(got, oracle, "k={k}");
        }
    }

    #[test]
    fn maxk_matches_sort_oracle() {
        let data: Vec<i32> = (0..150).map(|i| (i * 53 + 7) % 97 - 40).collect();
        for k in [1usize, 3, 8, 20] {
            let got: Vec<i32> = seq::reduce(&MaxK::new(k), &data);
            let mut oracle = data.clone();
            oracle.sort_by(|a, b| b.cmp(a));
            oracle.truncate(k);
            assert_eq!(got, oracle, "k={k}");
        }
    }

    #[test]
    fn fewer_inputs_than_k_pads_with_identity() {
        let got = seq::reduce(&MinK::new(4), &[5i32, 1]);
        assert_eq!(got, vec![1, 5, i32::MAX, i32::MAX]);
    }

    #[test]
    fn duplicates_are_kept() {
        let got = seq::reduce(&MinK::new(3), &[2i32, 2, 2, 9]);
        assert_eq!(got, vec![2, 2, 2]);
    }

    #[test]
    fn combine_merges_two_runs() {
        use crate::op::{accumulate_block, ReduceScanOp};
        let op = MinK::new(3);
        let mut a = op.ident();
        accumulate_block(&op, &mut a, &[9i32, 1, 8]);
        let mut b = op.ident();
        accumulate_block(&op, &mut b, &[0, 7, 2]);
        op.combine(&mut a, b);
        assert_eq!(op.red_gen(a), vec![0, 1, 2]);
    }

    #[test]
    fn mink_scan_is_prefix_topk() {
        let data = [5i32, 3, 9, 1];
        let got = seq::scan(&MinK::new(2), &data, ScanKind::Inclusive);
        assert_eq!(
            got,
            vec![
                vec![5, i32::MAX],
                vec![3, 5],
                vec![3, 5],
                vec![1, 3],
            ]
        );
    }

    #[test]
    fn parallel_mink_matches_sequential() {
        let pool = gv_executor::Pool::new(2);
        let data: Vec<i64> = (0..500).map(|i| (i * 67 + 13) % 499).collect();
        let op = MinK::new(10);
        let expected = seq::reduce(&op, &data);
        for parts in [1, 2, 7, 32] {
            assert_eq!(crate::par::reduce(&pool, parts, &op, &data), expected);
        }
    }
}
