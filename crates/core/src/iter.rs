//! Iterator-driven reductions and scans.
//!
//! The paper's RSMPI call sites describe inputs with *iterators* ("the
//! programmer first defines an iterator to describe the values passed to
//! the accumulate function"); this module gives the sequential engine the
//! same shape, so operators can consume generated or transformed streams
//! without materializing them. The pre/post hooks are honoured: the first
//! element is peeked for `pre_accum` and the last retained for
//! `post_accum`.

use crate::op::{ReduceScanOp, ScanKind};

/// Reduces the values of an iterator (paper Listing 2 with a streamed
/// block).
pub fn reduce_iter<Op, I>(op: &Op, values: I) -> Op::Out
where
    Op: ReduceScanOp + ?Sized,
    I: IntoIterator<Item = Op::In>,
{
    let mut state = op.ident();
    let mut iter = values.into_iter().peekable();
    if let Some(first) = iter.peek() {
        op.pre_accum(&mut state, first);
    }
    let mut last: Option<Op::In> = None;
    for x in iter {
        op.accum(&mut state, &x);
        last = Some(x);
    }
    if let Some(l) = &last {
        op.post_accum(&mut state, l);
    }
    op.red_gen(state)
}

/// Scans the values of an iterator lazily: yields one output per input,
/// on demand.
pub fn scan_iter<'a, Op, I>(
    op: &'a Op,
    values: I,
    kind: ScanKind,
) -> impl Iterator<Item = Op::Out> + 'a
where
    Op: ReduceScanOp + ?Sized,
    I: IntoIterator<Item = Op::In>,
    I::IntoIter: 'a,
{
    let mut state = op.ident();
    values.into_iter().map(move |x| match kind {
        ScanKind::Exclusive => {
            let out = op.scan_gen(&state, &x);
            op.accum(&mut state, &x);
            out
        }
        ScanKind::Inclusive => {
            op.accum(&mut state, &x);
            op.scan_gen(&state, &x)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::builtin::sum;
    use crate::ops::mink::MinK;
    use crate::ops::sorted::Sorted;
    use crate::seq;

    #[test]
    fn reduce_iter_matches_slice_reduce() {
        let data: Vec<i64> = (0..300).map(|i| (i * 37) % 101 - 50).collect();
        assert_eq!(
            reduce_iter(&sum::<i64>(), data.iter().copied()),
            seq::reduce(&sum::<i64>(), &data)
        );
        assert_eq!(
            reduce_iter(&MinK::<i64>::new(5), data.iter().copied()),
            seq::reduce(&MinK::<i64>::new(5), &data)
        );
    }

    #[test]
    fn reduce_iter_applies_hooks() {
        // Sorted relies on pre_accum; it must behave identically streamed.
        let sorted: Vec<i32> = (0..50).collect();
        assert!(reduce_iter(&Sorted::new(), sorted.iter().copied()));
        let mut unsorted = sorted.clone();
        unsorted.swap(20, 30);
        assert!(!reduce_iter(&Sorted::new(), unsorted.iter().copied()));
    }

    #[test]
    fn reduce_iter_over_generated_stream() {
        // No allocation of the conceptual array: reduce a mapped range.
        let total = reduce_iter(&sum::<u64>(), (1..=1000u64).map(|i| i * i));
        assert_eq!(total, 1000 * 1001 * 2001 / 6);
    }

    #[test]
    fn scan_iter_is_lazy_and_correct() {
        let data: Vec<i64> = (1..=10).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let streamed: Vec<i64> =
                scan_iter(&sum::<i64>(), data.iter().copied(), kind).collect();
            assert_eq!(streamed, seq::scan(&sum::<i64>(), &data, kind));
        }
        // Laziness: taking a prefix only evaluates that prefix.
        let first3: Vec<i64> = scan_iter(&sum::<i64>(), 1i64.., ScanKind::Inclusive)
            .take(3)
            .collect();
        assert_eq!(first3, vec![1, 3, 6]);
    }

    #[test]
    fn empty_iterators() {
        assert_eq!(reduce_iter(&sum::<i64>(), std::iter::empty()), 0);
        assert_eq!(
            scan_iter(&sum::<i64>(), std::iter::empty(), ScanKind::Inclusive).count(),
            0
        );
    }
}
