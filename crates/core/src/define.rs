//! `operator!` — a declarative operator definition form, the Rust
//! counterpart of the paper's RSMPI operator language (Listing 8).
//!
//! The paper's C+RSMPI operators are written as a block naming the state
//! fields and the component functions, which "a simple preprocessor"
//! translates into plain C; in Chapel the operator is a class whose
//! *default constructor computes the identity* from field initializers.
//! This macro gives Rust both properties: the `state { field: T = init }`
//! clause defines the state struct *and* `f_ident` at once, and the
//! function clauses compile directly into a [`ReduceScanOp`](crate::op::ReduceScanOp) impl — no
//! preprocessor needed.
//!
//! ```
//! use gv_core::operator;
//! use gv_core::prelude::*;
//!
//! // Listing 8, transcribed:
//! operator! {
//!     /// Is the ordered set of i32s sorted? (paper Listing 8)
//!     pub Sorted8 {
//!         commutative: false;
//!         input: i32;
//!         output: bool;
//!         state Sorted8State {
//!             first: i32 = i32::MAX,
//!             last: i32 = i32::MIN,
//!             status: bool = true,
//!         }
//!         pre_accum(s, x) { s.first = *x; }
//!         accum(s, x) {
//!             if s.last > *x { s.status = false; }
//!             s.last = *x;
//!         }
//!         combine(s1, s2) {
//!             s1.status = s1.status && s2.status && s1.last <= s2.first;
//!             s1.last = s2.last;
//!         }
//!         generate(s) -> bool { s.status }
//!     }
//! }
//!
//! assert!(reduce(&Sorted8, &[1, 2, 3]));
//! assert!(!reduce(&Sorted8, &[2, 1, 3]));
//! ```

/// Defines an operator declaratively; see the [module docs](self).
///
/// Grammar (clauses in this order):
///
/// ```text
/// operator! {
///     /// docs…
///     pub NAME {
///         commutative: BOOL;                  // optional, default true
///         input: TYPE;
///         output: TYPE;
///         state STATE_NAME { field: TYPE = IDENTITY_INIT, … }
///         pre_accum(s, x)  { … }              // optional
///         accum(s, x)      { … }
///         post_accum(s, x) { … }              // optional
///         combine(s1, s2)  { … }              // s1 precedes s2; s2 by value
///         generate(s) -> OUT { … }            // shared by reduce and scan
///         scan_gen(s, x) -> OUT { … }         // optional override
///     }
/// }
/// ```
#[macro_export]
macro_rules! operator {
    (
        $(#[$meta:meta])*
        pub $name:ident {
            $(commutative: $commutative:expr;)?
            input: $in_ty:ty;
            output: $out_ty:ty;
            state $state_name:ident {
                $($field:ident : $field_ty:ty = $field_init:expr),+ $(,)?
            }
            $(pre_accum($pre_s:ident, $pre_x:ident) $pre_body:block)?
            accum($acc_s:ident, $acc_x:ident) $acc_body:block
            $(post_accum($post_s:ident, $post_x:ident) $post_body:block)?
            combine($cmb_a:ident, $cmb_b:ident) $cmb_body:block
            generate($gen_s:ident) -> $gen_ty:ty $gen_body:block
            $(scan_gen($sg_s:ident, $sg_x:ident) -> $sg_ty:ty $sg_body:block)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        #[doc = concat!("State of the [`", stringify!($name), "`] operator; \
                         field initializers are its identity (`f_ident`).")]
        #[derive(Debug, Clone, PartialEq)]
        pub struct $state_name {
            $(
                #[doc = concat!("`", stringify!($field), "` component of the state.")]
                pub $field: $field_ty,
            )+
        }

        impl $name {
            /// The shared generate function over a borrowed state.
            #[allow(unused)]
            fn generate_ref($gen_s: &$state_name) -> $gen_ty $gen_body
        }

        impl $crate::op::ReduceScanOp for $name {
            type In = $in_ty;
            type State = $state_name;
            type Out = $out_ty;

            // Paper: "If it is undefined, it is assumed to be true by the
            // compiler."
            const COMMUTATIVE: bool = true $(&& $commutative)?;

            fn ident(&self) -> $state_name {
                $state_name {
                    $($field: $field_init,)+
                }
            }

            $(
                fn pre_accum(&self, $pre_s: &mut $state_name, $pre_x: &$in_ty) $pre_body
            )?

            fn accum(&self, $acc_s: &mut $state_name, $acc_x: &$in_ty) $acc_body

            $(
                fn post_accum(&self, $post_s: &mut $state_name, $post_x: &$in_ty) $post_body
            )?

            fn combine(&self, $cmb_a: &mut $state_name, $cmb_b: $state_name) $cmb_body

            fn red_gen(&self, state: $state_name) -> $out_ty {
                Self::generate_ref(&state)
            }

            #[allow(unused_variables)]
            fn scan_gen(&self, state: &$state_name, x: &$in_ty) -> $out_ty {
                $(
                    // Optional per-position override (Listing 6's
                    // scan_gen(x) case).
                    return (|$sg_s: &$state_name, $sg_x: &$in_ty| -> $sg_ty { $sg_body })(state, x);
                )?
                #[allow(unreachable_code)]
                Self::generate_ref(state)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::op::ScanKind;
    use crate::seq;

    operator! {
        /// Listing 8's sorted operator, via the macro.
        pub SortedDecl {
            commutative: false;
            input: i32;
            output: bool;
            state SortedDeclState {
                first: i32 = i32::MAX,
                last: i32 = i32::MIN,
                status: bool = true,
            }
            pre_accum(s, x) { s.first = *x; }
            accum(s, x) {
                if s.last > *x {
                    s.status = false;
                }
                s.last = *x;
            }
            combine(s1, s2) {
                s1.status = s1.status && s2.status && s1.last <= s2.first;
                s1.last = s2.last;
            }
            generate(s) -> bool { s.status }
        }
    }

    operator! {
        /// Listing 6's counts operator (8 fixed octants), via the macro —
        /// exercising the scan_gen override clause.
        pub CountsDecl {
            input: usize;
            output: u64;
            state CountsDeclState {
                v: [u64; 8] = [0; 8],
            }
            accum(s, x) { s.v[*x] += 1; }
            combine(s1, s2) {
                for (a, b) in s1.v.iter_mut().zip(s2.v) {
                    *a += b;
                }
            }
            generate(s) -> u64 { s.v.iter().sum() }
            scan_gen(s, x) -> u64 { s.v[*x] }
        }
    }

    #[test]
    fn declared_sorted_matches_listing_semantics() {
        assert!(seq::reduce(&SortedDecl, &[1, 2, 2, 9]));
        assert!(!seq::reduce(&SortedDecl, &[1, 3, 2]));
        const { assert!(!<SortedDecl as crate::op::ReduceScanOp>::COMMUTATIVE) };
    }

    #[test]
    fn declared_sorted_agrees_with_library_sorted_on_nonempty_chunks() {
        use crate::ops::sorted::Sorted;
        let pool = gv_executor::Pool::new(2);
        let sorted: Vec<i32> = (0..64).collect();
        let mut unsorted = sorted.clone();
        unsorted.swap(5, 40);
        for parts in [1, 2, 4] {
            assert_eq!(
                crate::par::reduce(&pool, parts, &SortedDecl, &sorted),
                crate::par::reduce(&pool, parts, &Sorted::new(), &sorted)
            );
            assert_eq!(
                crate::par::reduce(&pool, parts, &SortedDecl, &unsorted),
                crate::par::reduce(&pool, parts, &Sorted::new(), &unsorted)
            );
        }
    }

    #[test]
    fn field_initializers_are_the_identity() {
        use crate::op::ReduceScanOp;
        let s = SortedDecl.ident();
        assert_eq!(s.first, i32::MAX);
        assert_eq!(s.last, i32::MIN);
        assert!(s.status);
    }

    #[test]
    fn declared_counts_reduce_and_scan() {
        let octants: Vec<usize> = [6usize, 7, 6, 3, 8, 2, 8, 4, 8, 3]
            .iter()
            .map(|&o| o - 1)
            .collect();
        // Reduce via the shared generate: total particle count.
        assert_eq!(seq::reduce(&CountsDecl, &octants), 10);
        // Scan via the override: the paper's rankings.
        let ranks = seq::scan(&CountsDecl, &octants, ScanKind::Inclusive);
        assert_eq!(ranks, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn default_commutativity_is_true() {
        const { assert!(<CountsDecl as crate::op::ReduceScanOp>::COMMUTATIVE) };
    }
}
