//! The global-view operator abstraction (paper §3).
//!
//! An operator describes a reduction/scan over three types:
//!
//! * **`In`** — the element type of the collection being reduced or scanned;
//! * **`State`** — the value accumulated on each (virtual) processor and
//!   exchanged between processors during the combine phase;
//! * **`Out`** — the result type (a single value for a reduction, one value
//!   per element for a scan).
//!
//! and up to seven functions, with the type signatures from the paper:
//!
//! ```text
//! f_ident      : ()              -> state
//! f_pre_accum  : (state × in)    -> state     (optional)
//! f_accum      : (state × in)    -> state
//! f_post_accum : (state × in)    -> state     (optional)
//! f_combine    : (state × state) -> state
//! f_red_gen    : (state)         -> out
//! f_scan_gen   : (state × in)    -> out
//! ```
//!
//! In this Rust formulation the state is threaded by mutable reference
//! rather than returned, which is both idiomatic and what the paper's
//! Chapel classes do implicitly (`this` is the state). `pre_accum` and
//! `post_accum` default to no-ops, and `red_gen`/`scan_gen` get automatic
//! definitions whenever `State` converts into `Out` — covering the common
//! case the paper describes where "reductions and scans can share the same
//! generate functions" or need none at all.

/// Whether a scan is inclusive or exclusive (paper §1).
///
/// The exclusive scan is the primitive: the paper notes that the inclusive
/// scan can always be computed from the exclusive scan without
/// communication, while the converse requires either an invertible combine
/// function or an extra shift communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// Position `i` receives the combination of elements `0..=i`.
    Inclusive,
    /// Position `i` receives the combination of elements `0..i` (the
    /// identity at position 0).
    Exclusive,
}

/// A user-defined (or built-in) operator for global-view reductions and
/// scans.
///
/// Implementations must satisfy two laws for the parallel engines to agree
/// with the sequential one:
///
/// 1. **Associativity of `combine`** over the states reachable by
///    accumulation. (Non-associative operators can still be *expressed* —
///    the paper allows it for abstraction value — but only the sequential
///    engine is then guaranteed to match the language-specified order.)
/// 2. **Accumulate/combine coherence**: accumulating a run of elements into
///    a fresh identity state and then `combine`-ing it onto a previous state
///    must equal accumulating those elements directly onto the previous
///    state. This is what lets the accumulate phase be split at arbitrary
///    chunk boundaries.
///
/// If [`COMMUTATIVE`](Self::COMMUTATIVE) is `false`, every engine combines
/// states strictly in set order; if `true`, the message-passing reduce is
/// free to combine partial results in arrival order (paper §1: commutative
/// operators "immediately combine whichever partial results are available").
pub trait ReduceScanOp {
    /// Element type of the input collection.
    type In;
    /// Per-processor accumulation state; the value exchanged between
    /// processors in the combine phase.
    type State;
    /// Result type.
    type Out;

    /// Whether `combine` is commutative. Defaults to `true`, matching the
    /// paper's compiler rule: "If it is undefined, it is assumed to be true."
    const COMMUTATIVE: bool = true;

    /// `f_ident`: produces the identity state.
    fn ident(&self) -> Self::State;

    /// `f_pre_accum`: observes the *first* element on a processor before
    /// accumulation starts. No-op by default. Only called when the
    /// processor's block is non-empty (the `if n > 0` guard in Listings
    /// 2–3).
    fn pre_accum(&self, _state: &mut Self::State, _first: &Self::In) {}

    /// `f_accum`: folds one input element into the state.
    fn accum(&self, state: &mut Self::State, x: &Self::In);

    /// `f_post_accum`: observes the *last* element on a processor after
    /// accumulation finishes. No-op by default; same emptiness guard as
    /// [`pre_accum`](Self::pre_accum).
    fn post_accum(&self, _state: &mut Self::State, _last: &Self::In) {}

    /// `f_combine`: merges the state of a *later* run of elements (`later`)
    /// into the state of an *earlier* run (`earlier`), leaving in `earlier`
    /// the state of the concatenated run.
    ///
    /// The argument order is significant for non-commutative operators:
    /// `earlier` always corresponds to elements that precede `later`'s in
    /// the input ordering.
    fn combine(&self, earlier: &mut Self::State, later: Self::State);

    /// `f_red_gen`: produces the reduction result from the final state.
    ///
    /// Like the paper's Chapel interface ("every class … must define at
    /// least the three functions accum, combine, and gen"), the generate
    /// functions are required; the [`crate::monoid::MonoidOp`] adapter and
    /// the [`crate::impl_passthrough_gen!`] macro supply them for the common
    /// case where `State == Out`.
    fn red_gen(&self, state: Self::State) -> Self::Out;

    /// `f_scan_gen`: produces the scan output at one position from the
    /// running state and the input element at that position.
    ///
    /// For an exclusive scan the engines call `scan_gen` *before*
    /// accumulating the element; for an inclusive scan, *after* (the
    /// line-interchange the paper describes below Listing 3). The paper
    /// notes many operators "can share the same generate functions" — in
    /// that spirit, implementations with `State: Clone + Into<Out>` can
    /// write `scan_gen` as `state.clone().into()`, which is exactly what
    /// [`crate::impl_passthrough_gen!`] expands to.
    fn scan_gen(&self, state: &Self::State, x: &Self::In) -> Self::Out;

    /// Size in bytes this state occupies "on the wire", used by the
    /// message-passing cost model. Defaults to `size_of::<State>()`;
    /// operators whose state owns heap storage (e.g. `mink`'s vector)
    /// should override it.
    fn wire_size(&self, _state: &Self::State) -> usize {
        std::mem::size_of::<Self::State>()
    }

    /// Abstract operation count of one `accum` call, for the cost model.
    /// Defaults to 1 (one scalar update).
    fn accum_ops(&self) -> u64 {
        1
    }

    /// Abstract operation count of one `combine` call, for the cost model.
    /// Defaults to 1; operators with structured state (vectors, heaps)
    /// should report its size — the paper's observation that "the
    /// accumulate function often has a substantially faster implementation
    /// than the combine function" is exactly this asymmetry.
    fn combine_ops(&self, _incoming: &Self::State) -> u64 {
        1
    }

    /// Block-kernel hook for the accumulate phase: folds a whole run of
    /// elements into `state` at once, *without* the `pre_accum`/`post_accum`
    /// hooks ([`accumulate_block`] wraps those around it).
    ///
    /// Returning `false` (the default) makes every engine fall back to the
    /// per-element [`accum`](Self::accum) loop, so user-defined operators
    /// keep working unchanged. Implementations that return `true` must
    /// leave `state` exactly as the kernel's documented regrouping
    /// specifies (see [`crate::kernel`] for the pinned float contract;
    /// regrouping-invariant operators must match the scalar loop
    /// bit-for-bit).
    fn accum_block(&self, _state: &mut Self::State, _block: &[Self::In]) -> bool {
        false
    }

    /// Block-kernel hook for the rescan phase: appends one output per
    /// element of `block` to `out` and leaves `state` as the running state
    /// after the block (the engines' per-element `scan_gen`/`accum`
    /// interleave, batched).
    ///
    /// Returning `false` (the default) falls back to the per-element loop.
    fn scan_block(
        &self,
        _state: &mut Self::State,
        _block: &[Self::In],
        _out: &mut Vec<Self::Out>,
        _kind: ScanKind,
    ) -> bool {
        false
    }

    /// Combines a run of per-slot states elementwise:
    /// `earlier[j] = earlier[j] ⊕ later[j]` (the aggregated-reduction
    /// combine of paper §2.1). The default is the per-slot
    /// [`combine`](Self::combine) loop in slot order; operators with
    /// primitive states may vectorize it.
    fn combine_slots(&self, earlier: &mut [Self::State], later: Vec<Self::State>) {
        crate::kernel::note_scalar_block();
        for (a, b) in earlier.iter_mut().zip(later) {
            self.combine(a, b);
        }
    }

    /// Accumulates one input per slot: `states[j] ⊕= row[j]` (the
    /// aggregated accumulate of paper §2.1). Default is the per-slot
    /// [`accum`](Self::accum) loop; monoid-backed operators may vectorize
    /// it since their accumulate *is* their combine.
    fn accum_slots(&self, states: &mut [Self::State], row: &[Self::In]) {
        for (s, x) in states.iter_mut().zip(row) {
            self.accum(s, x);
        }
    }
}

/// Operators pass by reference transparently: `&Op` is itself an operator.
impl<Op: ReduceScanOp + ?Sized> ReduceScanOp for &Op {
    type In = Op::In;
    type State = Op::State;
    type Out = Op::Out;

    const COMMUTATIVE: bool = Op::COMMUTATIVE;

    fn ident(&self) -> Self::State {
        (**self).ident()
    }
    fn pre_accum(&self, state: &mut Self::State, first: &Self::In) {
        (**self).pre_accum(state, first);
    }
    fn accum(&self, state: &mut Self::State, x: &Self::In) {
        (**self).accum(state, x);
    }
    fn post_accum(&self, state: &mut Self::State, last: &Self::In) {
        (**self).post_accum(state, last);
    }
    fn combine(&self, earlier: &mut Self::State, later: Self::State) {
        (**self).combine(earlier, later);
    }
    fn red_gen(&self, state: Self::State) -> Self::Out {
        (**self).red_gen(state)
    }
    fn scan_gen(&self, state: &Self::State, x: &Self::In) -> Self::Out {
        (**self).scan_gen(state, x)
    }
    fn wire_size(&self, state: &Self::State) -> usize {
        (**self).wire_size(state)
    }
    fn accum_ops(&self) -> u64 {
        (**self).accum_ops()
    }
    fn combine_ops(&self, incoming: &Self::State) -> u64 {
        (**self).combine_ops(incoming)
    }
    fn accum_block(&self, state: &mut Self::State, block: &[Self::In]) -> bool {
        (**self).accum_block(state, block)
    }
    fn scan_block(
        &self,
        state: &mut Self::State,
        block: &[Self::In],
        out: &mut Vec<Self::Out>,
        kind: ScanKind,
    ) -> bool {
        (**self).scan_block(state, block, out, kind)
    }
    fn combine_slots(&self, earlier: &mut [Self::State], later: Vec<Self::State>) {
        (**self).combine_slots(earlier, later);
    }
    fn accum_slots(&self, states: &mut [Self::State], row: &[Self::In]) {
        (**self).accum_slots(states, row);
    }
}

/// Accumulates a full block of elements into `state`, applying the
/// pre/post hooks exactly as Listing 2 lines 3–8 specify (hooks are skipped
/// for empty blocks).
///
/// This helper is the single definition of the accumulate phase shared by
/// every engine in the repository. The inner element loop dispatches to
/// the operator's [`ReduceScanOp::accum_block`] kernel when it has one,
/// falling back to the per-element `accum` loop otherwise; either way the
/// dispatch is recorded in the [`crate::kernel`] counters.
pub fn accumulate_block<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    state: &mut Op::State,
    block: &[Op::In],
) {
    if let (Some(first), Some(last)) = (block.first(), block.last()) {
        op.pre_accum(state, first);
        if op.accum_block(state, block) {
            crate::kernel::note_kernel_block();
        } else {
            crate::kernel::note_scalar_block();
            for x in block {
                op.accum(state, x);
            }
        }
        op.post_accum(state, last);
    }
}

/// [`accumulate_block`] with the block kernel forcibly bypassed: always
/// the per-element `accum` loop (hooks included). This is the scalar
/// baseline the kernel micro-benchmark and the kernel property tests
/// measure and compare against.
pub fn accumulate_block_scalar<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    state: &mut Op::State,
    block: &[Op::In],
) {
    if let (Some(first), Some(last)) = (block.first(), block.last()) {
        op.pre_accum(state, first);
        for x in block {
            op.accum(state, x);
        }
        op.post_accum(state, last);
    }
}

/// Scans a full block of elements: appends one output per element to
/// `out`, leaving `state` as the running fold through the block. This is
/// the single definition of the (re)scan loop shared by the sequential
/// engine, the shared-memory engine's rescan phase, and the
/// message-passing local rescan.
///
/// Dispatches to the operator's [`ReduceScanOp::scan_block`] kernel when it
/// has one, falling back to the per-element Listing 3 loop otherwise;
/// either way the dispatch is recorded in the [`crate::kernel`] counters.
/// The `pre_accum`/`post_accum` hooks do not participate — they only run in
/// the accumulate phase feeding the cross-processor combine.
pub fn rescan_block<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    state: &mut Op::State,
    block: &[Op::In],
    kind: ScanKind,
    out: &mut Vec<Op::Out>,
) {
    if block.is_empty() {
        return;
    }
    if op.scan_block(state, block, out, kind) {
        crate::kernel::note_kernel_block();
    } else {
        crate::kernel::note_scalar_block();
        for x in block {
            match kind {
                ScanKind::Exclusive => {
                    out.push(op.scan_gen(state, x));
                    op.accum(state, x);
                }
                ScanKind::Inclusive => {
                    op.accum(state, x);
                    out.push(op.scan_gen(state, x));
                }
            }
        }
    }
}

/// [`rescan_block`] with the scan kernel forcibly bypassed: always the
/// per-element Listing 3 loop. The scalar baseline for the kernel
/// micro-benchmark and the kernel property tests.
pub fn rescan_block_scalar<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    state: &mut Op::State,
    block: &[Op::In],
    kind: ScanKind,
    out: &mut Vec<Op::Out>,
) {
    for x in block {
        match kind {
            ScanKind::Exclusive => {
                out.push(op.scan_gen(state, x));
                op.accum(state, x);
            }
            ScanKind::Inclusive => {
                op.accum(state, x);
                out.push(op.scan_gen(state, x));
            }
        }
    }
}

/// Folds `states` (in order) into a single state using `op.combine`,
/// starting from the identity.
pub fn combine_all<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    states: impl IntoIterator<Item = Op::State>,
) -> Op::State {
    let mut acc = op.ident();
    for s in states {
        op.combine(&mut acc, s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal hand-rolled operator exercising the default methods.
    struct PlainSum;
    impl ReduceScanOp for PlainSum {
        type In = i64;
        type State = i64;
        type Out = i64;
        fn ident(&self) -> i64 {
            0
        }
        fn accum(&self, s: &mut i64, x: &i64) {
            *s += *x;
        }
        fn combine(&self, a: &mut i64, b: i64) {
            *a += b;
        }
        fn red_gen(&self, s: i64) -> i64 {
            s
        }
        fn scan_gen(&self, s: &i64, _x: &i64) -> i64 {
            *s
        }
    }

    #[test]
    fn default_generates_pass_state_through() {
        let op = PlainSum;
        assert_eq!(op.red_gen(7), 7);
        assert_eq!(op.scan_gen(&7, &99), 7);
    }

    #[test]
    fn accumulate_block_sums() {
        let op = PlainSum;
        let mut s = op.ident();
        accumulate_block(&op, &mut s, &[1, 2, 3, 4]);
        assert_eq!(s, 10);
    }

    #[test]
    fn accumulate_block_empty_is_identity() {
        let op = PlainSum;
        let mut s = op.ident();
        accumulate_block(&op, &mut s, &[]);
        assert_eq!(s, 0);
    }

    #[test]
    fn hooks_fire_once_per_nonempty_block() {
        struct HookCounter;
        impl ReduceScanOp for HookCounter {
            type In = i64;
            type State = (u32, u32, u32); // (pre, accum, post) call counts
            type Out = (u32, u32, u32);
            fn ident(&self) -> Self::State {
                (0, 0, 0)
            }
            fn pre_accum(&self, s: &mut Self::State, _x: &i64) {
                s.0 += 1;
            }
            fn accum(&self, s: &mut Self::State, _x: &i64) {
                s.1 += 1;
            }
            fn post_accum(&self, s: &mut Self::State, _x: &i64) {
                s.2 += 1;
            }
            fn combine(&self, a: &mut Self::State, b: Self::State) {
                a.0 += b.0;
                a.1 += b.1;
                a.2 += b.2;
            }
            fn red_gen(&self, s: Self::State) -> Self::Out {
                s
            }
            fn scan_gen(&self, s: &Self::State, _x: &i64) -> Self::Out {
                *s
            }
        }
        let op = HookCounter;
        let mut s = op.ident();
        accumulate_block(&op, &mut s, &[10, 20, 30]);
        assert_eq!(s, (1, 3, 1));
        accumulate_block(&op, &mut s, &[]);
        assert_eq!(s, (1, 3, 1), "hooks must not fire on empty blocks");
    }

    #[test]
    fn combine_all_folds_in_order() {
        let op = PlainSum;
        assert_eq!(combine_all(&op, [1, 2, 3]), 6);
        assert_eq!(combine_all(&op, std::iter::empty()), 0);
    }
}
