//! Sequential reference engine.
//!
//! These are Listings 2 and 3 of the paper specialized to `p = 1`. Every
//! other engine in the repository (shared-memory, message-passing) is
//! property-tested against this one: for associative operators they must
//! produce identical results for every chunking/rank decomposition.

use crate::op::{accumulate_block, rescan_block, ReduceScanOp, ScanKind};

/// Reduces `input` with `op`, sequentially.
///
/// An empty input yields `red_gen(ident())`, the natural generalization of
/// the paper's `if n > 0` guards.
pub fn reduce<Op: ReduceScanOp + ?Sized>(op: &Op, input: &[Op::In]) -> Op::Out {
    let mut state = op.ident();
    accumulate_block(op, &mut state, input);
    op.red_gen(state)
}

/// Scans `input` with `op`, sequentially, producing one output per element.
///
/// Follows Listing 3 lines 10–13: for an exclusive scan each position is
/// generated *before* its element is accumulated; interchanging the two
/// steps (as the paper describes) yields the inclusive scan. The
/// `pre_accum`/`post_accum` hooks do not participate in the rescan loop —
/// they only ever run in the accumulate phase that feeds the cross-processor
/// combine, which at `p = 1` is vacuous.
pub fn scan<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    input: &[Op::In],
    kind: ScanKind,
) -> Vec<Op::Out> {
    scan_with_total(op, input, kind).0
}

/// Scans `input` and additionally returns the final state (the reduction
/// state of the whole input). Useful for pipelining a scan with a following
/// reduction without re-walking the data.
pub fn scan_with_total<Op: ReduceScanOp + ?Sized>(
    op: &Op,
    input: &[Op::In],
    kind: ScanKind,
) -> (Vec<Op::Out>, Op::State) {
    let mut state = op.ident();
    let mut out = Vec::with_capacity(input.len());
    rescan_block(op, &mut state, input, kind, &mut out);
    (out, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{Monoid, MonoidOp};

    struct Add;
    impl Monoid for Add {
        type T = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn combine(&self, a: &mut i64, b: &i64) {
            *a += *b;
        }
    }

    /// The paper's running example: the ordered set from §1.
    const PAPER_SET: [i64; 10] = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3];

    #[test]
    fn paper_sum_reduction_is_55() {
        assert_eq!(reduce(&MonoidOp(Add), &PAPER_SET), 55);
    }

    #[test]
    fn paper_inclusive_scan() {
        let got = scan(&MonoidOp(Add), &PAPER_SET, ScanKind::Inclusive);
        assert_eq!(got, vec![6, 13, 19, 22, 30, 32, 40, 44, 52, 55]);
    }

    #[test]
    fn paper_exclusive_scan() {
        let got = scan(&MonoidOp(Add), &PAPER_SET, ScanKind::Exclusive);
        assert_eq!(got, vec![0, 6, 13, 19, 22, 30, 32, 40, 44, 52]);
    }

    #[test]
    fn inclusive_scan_derivable_from_exclusive() {
        // Paper §1: inclusive[i] = exclusive[i] ⊕ input[i].
        let ex = scan(&MonoidOp(Add), &PAPER_SET, ScanKind::Exclusive);
        let inc = scan(&MonoidOp(Add), &PAPER_SET, ScanKind::Inclusive);
        for i in 0..PAPER_SET.len() {
            assert_eq!(inc[i], ex[i] + PAPER_SET[i]);
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(reduce(&MonoidOp(Add), &[]), 0);
        assert!(scan(&MonoidOp(Add), &[], ScanKind::Inclusive).is_empty());
        assert!(scan(&MonoidOp(Add), &[], ScanKind::Exclusive).is_empty());
    }

    #[test]
    fn scan_with_total_matches_reduce() {
        use crate::op::ReduceScanOp;
        let op = MonoidOp(Add);
        let (out, total) = scan_with_total(&op, &PAPER_SET, ScanKind::Exclusive);
        assert_eq!(out.len(), PAPER_SET.len());
        assert_eq!(op.red_gen(total), 55);
    }
}
