//! Splittable reduction states — the precondition for reduce-scatter
//! based combine schedules.
//!
//! The message-passing layer's bandwidth-optimal allreduce (Rabenseifner's
//! reduce-scatter + allgather; see Träff, *Optimal, Non-pipelined
//! Reduce-scatter and Allreduce Algorithms*) never ships a whole state
//! between two ranks. Instead every rank splits its state into `p`
//! segments, each segment is combined independently across ranks, and the
//! combined segments are reassembled on every rank. That is only correct
//! for operators whose `combine` *distributes over the segments*:
//!
//! ```text
//! combine(a, b)  ==  unsplit([combine(a₀, b₀), …, combine(a_{p−1}, b_{p−1})])
//!     where  [a₀ … a_{p−1}] = split(a)  and  [b₀ … b_{p−1}] = split(b)
//! ```
//!
//! Vector-shaped states with element-wise combine (histogram bins, bucket
//! counts) satisfy this with contiguous chunking; top-k style states
//! satisfy it because the k best of a union survive in whichever segment
//! they land in. Scalar states (sums, min/max, `sorted`) have nothing to
//! split and simply do not implement the trait — the algorithm selector
//! then falls back to whole-state schedules.

use crate::op::ReduceScanOp;

/// Operators whose [`State`](ReduceScanOp::State) can be split into
/// per-rank segments combined independently — the requirement for the
/// reduce-scatter + allgather allreduce.
///
/// # Laws
///
/// For every reachable state `s` and every `parts ≥ 1`:
///
/// 1. **Exactness**: `split_state(s, parts)` returns exactly `parts`
///    segments (empty segments are fine).
/// 2. **Round trip**: `unsplit_state(split_state(s, parts)) == s`.
/// 3. **Distributivity**: combining two states segment-wise and
///    reassembling equals combining them whole (the equation in the
///    module docs).
///
/// Segments are themselves values of `State`, so
/// [`wire_size`](ReduceScanOp::wire_size) and
/// [`combine_ops`](ReduceScanOp::combine_ops) price them correctly.
pub trait SplittableState: ReduceScanOp {
    /// Splits `state` into exactly `parts` segments, in order.
    fn split_state(&self, state: Self::State, parts: usize) -> Vec<Self::State>;

    /// Reassembles per-segment (already combined) states, in segment
    /// order, into a whole state.
    fn unsplit_state(&self, segments: Vec<Self::State>) -> Self::State;
}

/// The half-open index ranges of the balanced contiguous chunking used by
/// [`split_vec_segments`]: the first `len % parts` segments get one extra
/// element, segments beyond `len` are empty. Depends only on
/// `(len, parts)`, so equal-length states chunk identically on every rank
/// — the property the pipelined schedules rely on when matching segment
/// indices across ranks.
pub fn segment_ranges(len: usize, parts: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    assert!(parts >= 1, "cannot split into zero segments");
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0usize;
    (0..parts).map(move |i| {
        let size = base + usize::from(i < extra);
        let range = start..start + size;
        start += size;
        range
    })
}

/// Borrowed view of the segments of a slice — [`split_vec_segments`]
/// without moving any element, for callers that only need to *read* (or
/// price) the segments of a state they still own.
pub fn segment_views<T>(v: &[T], parts: usize) -> Vec<&[T]> {
    segment_ranges(v.len(), parts).map(|r| &v[r]).collect()
}

/// Splits a vector into `parts` balanced contiguous chunks (the first
/// `len % parts` chunks get one extra element; chunks beyond `len` are
/// empty). The chunking follows [`segment_ranges`], so equal-length
/// states split identically on every rank.
pub fn split_vec_segments<T>(mut v: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let ranges: Vec<_> = segment_ranges(v.len(), parts).collect();
    let mut out = Vec::with_capacity(parts);
    for range in ranges {
        let rest = v.split_off(range.len());
        out.push(std::mem::replace(&mut v, rest));
    }
    debug_assert!(v.is_empty());
    out
}

/// Concatenates segments back into one vector — the inverse of
/// [`split_vec_segments`] for element-wise operators.
pub fn unsplit_vec_segments<T>(segments: Vec<Vec<T>>) -> Vec<T> {
    let total = segments.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for seg in segments {
        out.extend(seg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_and_ordered() {
        let chunks = split_vec_segments((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]);
    }

    #[test]
    fn more_parts_than_elements_gives_empty_tails() {
        let chunks = split_vec_segments(vec![1, 2], 5);
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks[0], vec![1]);
        assert_eq!(chunks[1], vec![2]);
        assert!(chunks[2..].iter().all(Vec::is_empty));
    }

    #[test]
    fn unsplit_round_trips() {
        for parts in [1usize, 2, 3, 7, 16] {
            let v: Vec<u32> = (0..13).collect();
            assert_eq!(unsplit_vec_segments(split_vec_segments(v.clone(), parts)), v);
        }
    }

    #[test]
    fn empty_vector_splits_into_empty_segments() {
        let chunks = split_vec_segments(Vec::<u8>::new(), 3);
        assert_eq!(chunks, vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn segment_ranges_tile_the_slice_in_order() {
        for (len, parts) in [(10usize, 4usize), (2, 5), (13, 3), (0, 2), (7, 1), (16, 16)] {
            let ranges: Vec<_> = segment_ranges(len, parts).collect();
            assert_eq!(ranges.len(), parts, "len={len} parts={parts}");
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start, "len={len} parts={parts}");
                expect_start = r.end;
            }
            assert_eq!(expect_start, len, "len={len} parts={parts}");
        }
    }

    #[test]
    fn segment_views_agree_with_split_vec_segments() {
        let v: Vec<u32> = (0..13).collect();
        for parts in [1usize, 2, 3, 7, 16] {
            let views = segment_views(&v, parts);
            let owned = split_vec_segments(v.clone(), parts);
            assert_eq!(views.len(), owned.len());
            for (view, chunk) in views.iter().zip(&owned) {
                assert_eq!(*view, chunk.as_slice(), "parts={parts}");
            }
        }
    }
}
