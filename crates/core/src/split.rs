//! Splittable reduction states — the precondition for reduce-scatter
//! based combine schedules.
//!
//! The message-passing layer's bandwidth-optimal allreduce (Rabenseifner's
//! reduce-scatter + allgather; see Träff, *Optimal, Non-pipelined
//! Reduce-scatter and Allreduce Algorithms*) never ships a whole state
//! between two ranks. Instead every rank splits its state into `p`
//! segments, each segment is combined independently across ranks, and the
//! combined segments are reassembled on every rank. That is only correct
//! for operators whose `combine` *distributes over the segments*:
//!
//! ```text
//! combine(a, b)  ==  unsplit([combine(a₀, b₀), …, combine(a_{p−1}, b_{p−1})])
//!     where  [a₀ … a_{p−1}] = split(a)  and  [b₀ … b_{p−1}] = split(b)
//! ```
//!
//! Vector-shaped states with element-wise combine (histogram bins, bucket
//! counts) satisfy this with contiguous chunking; top-k style states
//! satisfy it because the k best of a union survive in whichever segment
//! they land in. Scalar states (sums, min/max, `sorted`) have nothing to
//! split and simply do not implement the trait — the algorithm selector
//! then falls back to whole-state schedules.

use crate::op::ReduceScanOp;

/// Operators whose [`State`](ReduceScanOp::State) can be split into
/// per-rank segments combined independently — the requirement for the
/// reduce-scatter + allgather allreduce.
///
/// # Laws
///
/// For every reachable state `s` and every `parts ≥ 1`:
///
/// 1. **Exactness**: `split_state(s, parts)` returns exactly `parts`
///    segments (empty segments are fine).
/// 2. **Round trip**: `unsplit_state(split_state(s, parts)) == s`.
/// 3. **Distributivity**: combining two states segment-wise and
///    reassembling equals combining them whole (the equation in the
///    module docs).
///
/// Segments are themselves values of `State`, so
/// [`wire_size`](ReduceScanOp::wire_size) and
/// [`combine_ops`](ReduceScanOp::combine_ops) price them correctly.
pub trait SplittableState: ReduceScanOp {
    /// Splits `state` into exactly `parts` segments, in order.
    fn split_state(&self, state: Self::State, parts: usize) -> Vec<Self::State>;

    /// Reassembles per-segment (already combined) states, in segment
    /// order, into a whole state.
    fn unsplit_state(&self, segments: Vec<Self::State>) -> Self::State;
}

/// Splits a vector into `parts` balanced contiguous chunks (the first
/// `len % parts` chunks get one extra element; chunks beyond `len` are
/// empty). The chunking depends only on `(len, parts)`, so equal-length
/// states split identically on every rank.
pub fn split_vec_segments<T>(mut v: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    assert!(parts >= 1, "cannot split into zero segments");
    let n = v.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        let rest = v.split_off(size);
        out.push(std::mem::replace(&mut v, rest));
    }
    debug_assert!(v.is_empty());
    out
}

/// Concatenates segments back into one vector — the inverse of
/// [`split_vec_segments`] for element-wise operators.
pub fn unsplit_vec_segments<T>(segments: Vec<Vec<T>>) -> Vec<T> {
    let total = segments.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for seg in segments {
        out.extend(seg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_and_ordered() {
        let chunks = split_vec_segments((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]);
    }

    #[test]
    fn more_parts_than_elements_gives_empty_tails() {
        let chunks = split_vec_segments(vec![1, 2], 5);
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks[0], vec![1]);
        assert_eq!(chunks[1], vec![2]);
        assert!(chunks[2..].iter().all(Vec::is_empty));
    }

    #[test]
    fn unsplit_round_trips() {
        for parts in [1usize, 2, 3, 7, 16] {
            let v: Vec<u32> = (0..13).collect();
            assert_eq!(unsplit_vec_segments(split_vec_segments(v.clone(), parts)), v);
        }
    }

    #[test]
    fn empty_vector_splits_into_empty_segments() {
        let chunks = split_vec_segments(Vec::<u8>::new(), 3);
        assert_eq!(chunks, vec![vec![], vec![], vec![]]);
    }
}
