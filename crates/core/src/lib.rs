//! # gv-core — global-view user-defined reductions and scans
//!
//! A Rust implementation of the abstraction from *"Global-View
//! Abstractions for User-Defined Reductions and Scans"* (Deitz, Callahan,
//! Chamberlain, Snyder — PPoPP 2006).
//!
//! A **reduction** combines an ordered set `[a1, …, an]` into
//! `a1 ⊕ a2 ⊕ ⋯ ⊕ an`; a **scan** produces every prefix combination. The
//! *global-view* abstraction covers both the per-processor accumulate phase
//! and the cross-processor combine phase: a user-defined operator supplies
//! up to seven functions (`ident`, `pre_accum`, `accum`, `post_accum`,
//! `combine`, `red_gen`, `scan_gen`) over three types (input, state,
//! output), and the engines run the paper's Listings 2 and 3 over any
//! number of virtual processors.
//!
//! ## Quick start
//!
//! ```
//! use gv_core::prelude::*;
//!
//! // Built-in operators (the 12 MPI ops):
//! let data = [6i64, 7, 6, 3, 8, 2, 8, 4, 8, 3];
//! assert_eq!(reduce(&sum::<i64>(), &data), 55);
//! assert_eq!(
//!     scan(&sum::<i64>(), &data, ScanKind::Exclusive),
//!     vec![0, 6, 13, 19, 22, 30, 32, 40, 44, 52],
//! );
//!
//! // A user-defined operator from the paper (mink = k smallest values):
//! assert_eq!(reduce(&MinK::<i64>::new(3), &data), vec![2, 3, 3]);
//!
//! // The same reduction on 8 virtual processors:
//! let pool = gv_executor::Pool::new(2);
//! assert_eq!(par_reduce(&pool, 8, &MinK::<i64>::new(3), &data), vec![2, 3, 3]);
//! ```
//!
//! ## Crate layout
//!
//! * [`op`] — the [`op::ReduceScanOp`] trait (the paper's §3
//!   function set) and [`op::ScanKind`].
//! * [`monoid`] — the degenerate all-types-equal case (paper §2's
//!   local-view operator) and its adapter into the full trait.
//! * [`seq`] / [`par`] — sequential and shared-memory engines (Listings 2
//!   and 3).
//! * [`kernel`] — vector-lane block kernels under the engines (pinned
//!   lane regrouping, runtime ISA dispatch, dispatch counters).
//! * [`agg`] — element-wise aggregated reductions and scans (§2.1).
//! * [`ops`] — the operator library (built-ins, `mink`, `mini`, `counts`,
//!   `sorted`, `TopBottomK`, …).
//!
//! The message-passing execution of the same operators lives in the
//! `gv-rsmpi` crate, over the `gv-msgpass` substrate.

#![warn(missing_docs)]

pub mod agg;
pub mod define;
pub mod iter;
pub mod kernel;
pub mod monoid;
pub mod op;
pub mod ops;
pub mod par;
pub mod seq;
pub mod split;

pub use monoid::{InvertibleMonoid, Monoid, MonoidOp};
pub use op::{ReduceScanOp, ScanKind};
pub use split::SplittableState;
pub use seq::{reduce, scan};

/// Shared-memory parallel reduction; see [`par::reduce`].
pub use par::reduce as par_reduce;
/// Shared-memory parallel scan; see [`par::scan`].
pub use par::scan as par_scan;

/// Everything needed to define and run reductions and scans.
pub mod prelude {
    pub use crate::agg::{reduce_elementwise, scan_elementwise};
    pub use crate::iter::{reduce_iter, scan_iter};
    pub use crate::monoid::{Monoid, MonoidOp};
    pub use crate::op::{ReduceScanOp, ScanKind};
    pub use crate::ops::builtin::{
        band, bor, bxor, land, lor, lxor, max, maxloc, min, minloc, prod, sum,
    };
    pub use crate::ops::counts::{BucketRank, Counts};
    pub use crate::ops::mink::{MaxK, MinK};
    pub use crate::ops::minloc::{maxi, mini, MaxI, MinI};
    pub use crate::ops::minmax::{minmax, MinMax};
    pub use crate::ops::segmented::{flag_segments, Segmented};
    pub use crate::ops::sorted::Sorted;
    pub use crate::ops::stats::{MeanVar, Moments};
    pub use crate::ops::topk::{TopBottom, TopBottomK};
    pub use crate::par::{reduce as par_reduce, scan as par_scan};
    pub use crate::seq::{reduce, scan};
    pub use crate::split::SplittableState;
}
