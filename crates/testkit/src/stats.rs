//! Robust summary statistics for the bench harness: median and MAD
//! (median absolute deviation). Benchmarks on a shared host see
//! scheduling noise in the tail; the median/MAD pair is insensitive to
//! it, unlike mean/stddev.

/// Median of `values` (averaging the middle pair for even lengths).
///
/// # Panics
/// Panics on an empty slice.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median — a robust spread measure.
/// Zero for constant (or single-sample) data.
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // Nine samples near 1.0, one wild outlier: MAD stays small.
        let mut v = vec![1.0; 9];
        v.push(1000.0);
        assert_eq!(median(&v), 1.0);
        assert_eq!(mad(&v), 0.0);
    }

    #[test]
    fn mad_of_spread_data() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mad(&v), 1.0);
    }
}
