//! Deterministic, seedable pseudorandom number generators.
//!
//! [`TestRng`] is the workhorse for test-case generation: xoshiro256++
//! state seeded through splitmix64, so any `u64` seed — including 0 —
//! yields a well-mixed stream. Both algorithms are public-domain
//! constructions (Blackman & Vigna); they are reimplemented here so the
//! workspace needs no `rand` dependency.
//!
//! [`Nas46`] is the NAS Parallel Benchmarks linear congruential stream
//! (`x ← 5^13 · x mod 2^46`), the *same* generator `gv_nas::randlc`
//! implements for the paper's kernels. Having it here lets tests and
//! benches draw NAS-distributed workloads without depending on `gv-nas`;
//! a cross-check test in `gv-nas` pins the two implementations to the
//! identical bit stream.

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output. Used for seeding and for deriving independent sub-seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator for test-case generation.
///
/// Not cryptographic. Every method is reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform in `0..n` (`n` must be non-zero). Lemire's widening
    /// multiply with rejection — unbiased for every `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut m = self.next_u64() as u128 * n as u128;
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = self.next_u64() as u128 * n as u128;
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in the half-open range `lo..hi` (`lo < hi`).
    pub fn i64_in(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.below(span) as i64)
    }

    /// Uniform in the half-open range `lo..hi` (`lo < hi`).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = (range.end - range.start) as u64;
        range.start + self.below(span) as usize
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the half-open range `lo..hi` (`lo < hi`, both finite).
    pub fn f64_in(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.f64_unit() * (range.end - range.start)
    }

    /// An independent generator split off this one's stream. The parent
    /// advances by one step; parent and child streams do not correlate.
    pub fn split(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

/// The NAS Parallel Benchmarks pseudorandom stream:
/// `x_{k+1} = 5^13 · x_k mod 2^46`, variate `x_k · 2^-46 ∈ (0, 1)`.
///
/// Bit-compatible with `gv_nas::randlc::Randlc` (the kernels' generator);
/// this copy exists so test workloads can be NAS-distributed without a
/// `gv-nas` dependency, and is pinned against the original by a test in
/// `gv-nas`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nas46 {
    x: u64,
}

/// The NPB multiplier `a = 5^13`.
pub const NAS_A: u64 = 1_220_703_125;

/// The canonical NPB seed used by IS and MG.
pub const NAS_DEFAULT_SEED: u64 = 314_159_265;

const MOD_BITS: u32 = 46;
const MASK: u64 = (1u64 << MOD_BITS) - 1;
const SCALE: f64 = 1.0 / (1u64 << MOD_BITS) as f64;

#[inline]
fn mul_mod46(x: u64, y: u64) -> u64 {
    ((x as u128 * y as u128) & MASK as u128) as u64
}

fn pow46(a: u64, mut n: u64) -> u64 {
    let mut base = a & MASK;
    let mut acc = 1u64;
    while n > 0 {
        if n & 1 == 1 {
            acc = mul_mod46(acc, base);
        }
        base = mul_mod46(base, base);
        n >>= 1;
    }
    acc
}

impl Nas46 {
    /// A stream starting from `seed` (taken mod 2^46).
    pub fn new(seed: u64) -> Self {
        Nas46 { x: seed & MASK }
    }

    /// The canonical NPB stream (`seed = 314159265`).
    pub fn nas_default() -> Self {
        Self::new(NAS_DEFAULT_SEED)
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Advances one step and returns the uniform variate in `(0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul_mod46(self.x, NAS_A);
        self.x as f64 * SCALE
    }

    /// Jumps the stream forward `n` steps in O(log n).
    pub fn jump(&mut self, n: u64) {
        self.x = mul_mod46(self.x, pow46(NAS_A, n));
    }

    /// A stream positioned `n` steps after this one.
    pub fn jumped(&self, n: u64) -> Self {
        let mut g = *self;
        g.jump(n);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut g = TestRng::new(0);
        let first: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        assert!(first.iter().any(|&x| x != 0));
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn below_is_in_range_and_hits_everything() {
        let mut g = TestRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut g = TestRng::new(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = g.i64_in(-5..5);
            assert!((-5..5).contains(&v));
            lo_seen |= v == -5;
            hi_seen |= v == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_stays_in_unit_interval_with_sane_mean() {
        let mut g = TestRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = g.f64_unit();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn split_streams_do_not_mirror_the_parent() {
        let mut parent = TestRng::new(9);
        let mut child = parent.split();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn nas46_jump_matches_stepping() {
        for n in [0u64, 1, 17, 1000] {
            let mut stepped = Nas46::nas_default();
            for _ in 0..n {
                stepped.next_f64();
            }
            assert_eq!(stepped.state(), Nas46::nas_default().jumped(n).state());
        }
    }

    #[test]
    fn nas46_first_step_from_canonical_seed() {
        let mut g = Nas46::nas_default();
        g.next_f64();
        assert_eq!(g.state(), mul_mod46(NAS_DEFAULT_SEED, NAS_A));
    }
}
