//! # gv-testkit — the repository's own test substrate
//!
//! The correctness claims this repository makes are *algebraic*: the
//! operator contract (`gv_core::op`) demands associativity of `combine`
//! and accumulate/combine coherence, and every engine-agreement theorem
//! (sequential = shared-memory = message-passing) rests on them. Testing
//! those laws well requires randomized inputs, reproducible failures, and
//! minimal counterexamples — infrastructure that is itself part of the
//! correctness story. This crate owns that infrastructure with **zero
//! external dependencies**, so the whole workspace builds and tests with
//! `cargo build --release --offline && cargo test -q --offline` on a
//! machine that has never seen a crate registry.
//!
//! Three subsystems:
//!
//! * [`rng`] — deterministic, seedable PRNGs: [`rng::TestRng`]
//!   (splitmix64-seeded xoshiro256++) for test-case generation, and
//!   [`rng::Nas46`], bit-compatible with the NAS `randlc` stream that
//!   `gv-nas` reimplements (cross-checked by a test in that crate).
//! * [`prop`] — a small property-testing runner: [`prop::Strategy`]
//!   value generators with shrink candidates, [`prop::check`] which runs
//!   N cases, and on failure greedily shrinks the counterexample and
//!   panics with the **case seed** so the failure replays exactly.
//! * [`bench`] — a criterion-shaped harness (warmup, timed samples,
//!   median/MAD, fixed-width table output) for the `harness = false`
//!   benches in `crates/bench/benches/`.
//!
//! ## Reproducing a property failure
//!
//! A falsified property panics with a message like:
//!
//! ```text
//! property `par_sum_matches_seq` falsified at case 17/256 (case seed 0x9e3779b97f4a7c15)
//!   minimal input: ([-3], 2)
//!   error: 0 != -3
//!   replay: GV_TESTKIT_SEED=0x9e3779b97f4a7c15 cargo test par_sum_matches_seq
//! ```
//!
//! Setting `GV_TESTKIT_SEED` makes every [`prop::check`] in the process
//! run exactly one case whose generator is seeded with that value, so the
//! named test reproduces its failing input bit-for-bit (shrinking then
//! re-minimizes it). `GV_TESTKIT_CASES=n` overrides the per-law case
//! count instead, e.g. to run overnight soak loops.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod prop;
pub mod rng;
pub mod stats;

pub use prop::{check, Config, Strategy};
pub use rng::{Nas46, TestRng};
