//! A criterion-shaped micro-benchmark harness.
//!
//! Mirrors the slice of the `criterion` API the repository's
//! `harness = false` benches use — groups, [`Throughput`], [`BenchmarkId`],
//! `bench_function` / `bench_with_input`, a [`Bencher::iter`] loop — on a
//! simple measurement core: a warmup phase estimates the per-iteration
//! time, then `sample_size` timed samples (each batching enough
//! iterations to outweigh timer overhead) are summarized by **median and
//! MAD** ([`crate::stats`]), which shrug off scheduler noise.
//!
//! Results print as a fixed-width table row per benchmark:
//!
//! ```text
//! reduce/sum_i64/seq/1000            326 ns/iter  ± 2 ns     3.07 Gelem/s
//! ```
//!
//! Environment knobs: `GV_BENCH_QUICK=1` runs one short sample per
//! benchmark (CI smoke), `GV_BENCH_SAMPLE_MS=n` changes the per-sample
//! time target.

use std::fmt;
use std::time::{Duration, Instant};

use crate::stats::{mad, median};

pub use std::hint::black_box;

/// Throughput annotation for a group: lets the table report a rate
/// alongside the per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter,
/// rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (for sweeps within one group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count and records the elapsed
    /// time. The closure's return value is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished benchmark: identifier, per-iteration stats, throughput.
#[derive(Debug, Clone)]
pub struct Record {
    /// Full identifier (`group/benchmark[/param]`).
    pub id: String,
    /// Median per-iteration time, seconds.
    pub median_s: f64,
    /// Median absolute deviation of the per-iteration time, seconds.
    pub mad_s: f64,
    /// Iterations per sample actually used.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Group throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl Record {
    /// The throughput rate in units/second, if annotated.
    pub fn rate(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units / self.median_s
        })
    }
}

/// The harness: owns configuration and accumulates [`Record`]s.
pub struct Bench {
    sample_size: usize,
    warmup: Duration,
    sample_target: Duration,
    quick: bool,
    records: Vec<Record>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A harness with defaults (10 samples, 300 ms warmup, 10 ms per
    /// sample), honouring `GV_BENCH_QUICK` and `GV_BENCH_SAMPLE_MS`.
    pub fn new() -> Self {
        let quick = std::env::var("GV_BENCH_QUICK").is_ok_and(|v| v != "0");
        let sample_ms = std::env::var("GV_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10u64);
        Bench {
            sample_size: 10,
            warmup: Duration::from_millis(300),
            sample_target: Duration::from_millis(sample_ms),
            quick,
            records: Vec::new(),
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one sample");
        self.sample_size = n;
        self
    }

    /// Opens a named group; benchmarks in it render as `group/…`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group { bench: self, name: name.into(), throughput: None }
    }

    /// All records measured so far (for harnesses that post-process).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let (samples, warmup) = if self.quick {
            (1, Duration::from_millis(1))
        } else {
            (self.sample_size, self.warmup)
        };

        // Warmup: geometric iteration ramp (1, 2, 4, …) until the budget
        // is spent; the last batch dominates the per-iteration estimate,
        // so timer overhead washes out even for nanosecond routines.
        let mut ramp = 1u64;
        let per_iter;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher { iters: ramp, elapsed: Duration::ZERO };
            routine(&mut b);
            if warm_start.elapsed() >= warmup || ramp >= 1 << 20 {
                per_iter = b.elapsed.checked_div(ramp as u32).unwrap_or(Duration::ZERO);
                break;
            }
            ramp *= 2;
        }

        // Batch enough iterations per sample that timer overhead is
        // negligible, but never more than ~the sample target allows.
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (self.sample_target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut per_iter_times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            routine(&mut b);
            per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
        }

        let record = Record {
            id,
            median_s: median(&per_iter_times),
            mad_s: mad(&per_iter_times),
            iters_per_sample: iters,
            samples,
            throughput,
        };
        println!("{}", render_row(&record));
        self.records.push(record);
    }
}

/// A benchmark group: shares a name prefix and a throughput annotation.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Annotates subsequent benchmarks in this group with a throughput,
    /// so the table reports a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Measures `routine` under `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        self.bench.run_one(full, self.throughput, routine);
    }

    /// Measures `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id);
        self.bench
            .run_one(full, self.throughput, |b| routine(b, input));
    }

    /// Ends the group (rows were printed as they were measured).
    pub fn finish(self) {}
}

/// Formats seconds with engineering units (mirrors `gv_bench::table`).
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn fmt_rate(rate: f64, throughput: Throughput) -> String {
    let unit = match throughput {
        Throughput::Elements(_) => "elem/s",
        Throughput::Bytes(_) => "B/s",
    };
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// One fixed-width table row for a finished benchmark.
pub fn render_row(record: &Record) -> String {
    let rate = match (record.rate(), record.throughput) {
        (Some(r), Some(t)) => format!("  {}", fmt_rate(r, t)),
        _ => String::new(),
    };
    format!(
        "{:<44} {:>12}/iter  ± {:>10}{}",
        record.id,
        fmt_time(record.median_s),
        fmt_time(record.mad_s),
        rate
    )
}

/// Defines a bench-group function in the criterion style:
///
/// ```ignore
/// bench_group! {
///     name = benches;
///     config = Bench::new().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// bench_main!(benches);
/// ```
#[macro_export]
macro_rules! bench_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut bench = $config;
            $( $target(&mut bench); )+
        }
    };
}

/// Defines `main` running the given bench groups (CLI arguments from
/// `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench() -> Bench {
        Bench {
            sample_size: 3,
            warmup: Duration::from_millis(1),
            sample_target: Duration::from_micros(200),
            quick: false,
            records: Vec::new(),
        }
    }

    #[test]
    fn measures_and_records() {
        let mut bench = quick_bench();
        let mut group = bench.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
        let records = bench.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "g/sum");
        assert!(records[0].median_s > 0.0);
        assert!(records[0].rate().unwrap() > 0.0);
        assert_eq!(records[0].samples, 3);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut bench = quick_bench();
        let data: Vec<u64> = (0..64).collect();
        let mut group = bench.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
        assert_eq!(bench.records()[0].id, "g/sum/64");
    }

    #[test]
    fn row_rendering_contains_id_and_units() {
        let record = Record {
            id: "g/x".into(),
            median_s: 2.5e-6,
            mad_s: 1.0e-8,
            iters_per_sample: 100,
            samples: 10,
            throughput: Some(Throughput::Elements(1000)),
        };
        let row = render_row(&record);
        assert!(row.contains("g/x"), "{row}");
        assert!(row.contains("µs"), "{row}");
        assert!(row.contains("elem/s"), "{row}");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("seq", 1000).to_string(), "seq/1000");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
