//! A minimal property-testing runner: strategies, case generation,
//! greedy shrinking, and reproducible-seed reporting.
//!
//! The shape is a deliberately small subset of `proptest`: a
//! [`Strategy`] generates a value from a [`TestRng`] and can propose
//! *shrink candidates* (simpler variants of a failing value); [`check`]
//! runs `Config::cases` independent cases, and on the first failure
//! greedily walks shrink candidates until none fails, then panics with
//! the minimal counterexample **and the case seed** so the failure can be
//! replayed exactly (see the crate docs for the `GV_TESTKIT_SEED`
//! workflow).
//!
//! Each case derives its own seed from the base seed, the property name,
//! and the case index — so one case is reproducible in isolation, and
//! adding cases never perturbs earlier ones.

use crate::rng::{splitmix64, TestRng};

/// Runner configuration. Build with [`Config::new`], which also honours
/// the `GV_TESTKIT_SEED` / `GV_TESTKIT_CASES` environment overrides.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Base seed the per-case seeds derive from.
    pub seed: u64,
    /// Upper bound on accepted shrink steps (candidate evaluations are
    /// bounded by this times the candidate fan-out).
    pub max_shrink_steps: u32,
    /// When set (via `GV_TESTKIT_SEED`), run exactly one case with this
    /// case seed instead of the normal sweep.
    pub replay: Option<u64>,
}

/// Default base seed: fixed so CI runs are deterministic; vary it via
/// `GV_TESTKIT_SEED` or [`Config::seed`] for soak testing.
pub const DEFAULT_SEED: u64 = 0x675f_7465_7374_6b69; // "gv_testki"

impl Config {
    /// A config running `cases` cases, with environment overrides:
    /// `GV_TESTKIT_CASES=n` replaces the case count and
    /// `GV_TESTKIT_SEED=0x…` (hex or decimal) switches to single-case
    /// replay with that case seed.
    pub fn new(cases: u32) -> Self {
        let cases = match std::env::var("GV_TESTKIT_CASES") {
            Ok(v) => v.parse().unwrap_or(cases),
            Err(_) => cases,
        };
        let replay = std::env::var("GV_TESTKIT_SEED").ok().map(|v| {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("unparseable GV_TESTKIT_SEED: {v:?}"))
        });
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_steps: 1000,
            replay,
        }
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generator of random test values with optional shrink candidates.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "simpler" variants of `value` to try during
    /// shrinking. An empty list ends shrinking at `value`.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The per-case seed for `(base, property name, case index)`.
pub fn case_seed(base: u64, name: &str, case: u32) -> u64 {
    let mut s = base ^ fnv1a(name.as_bytes()) ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Runs `prop` on `config.cases` random values from `strategy`.
///
/// On failure: greedily shrinks the counterexample, then panics with the
/// minimal input, the error, and the case seed (`GV_TESTKIT_SEED=…`
/// replays it — see the crate docs).
pub fn check<S: Strategy>(
    name: &str,
    config: &Config,
    strategy: &S,
    prop: impl Fn(&S::Value) -> Result<(), String>,
) {
    let run_one = |case: u32, seed: u64| {
        let mut rng = TestRng::new(seed);
        let value = strategy.generate(&mut rng);
        if let Err(err) = prop(&value) {
            let (minimal, min_err, steps) =
                shrink_failure(strategy, &prop, value.clone(), err.clone(), config.max_shrink_steps);
            panic!(
                "property `{name}` falsified at case {case}/{total} (case seed {seed:#018x})\n  \
                 minimal input: {minimal:?}\n  \
                 error: {min_err}\n  \
                 original input ({steps} shrink steps earlier): {value:?}\n  \
                 original error: {err}\n  \
                 replay: GV_TESTKIT_SEED={seed:#x} cargo test {name}",
                total = config.cases,
            );
        }
    };
    match config.replay {
        Some(seed) => run_one(0, seed),
        None => {
            for case in 0..config.cases {
                run_one(case, case_seed(config.seed, name, case));
            }
        }
    }
}

/// Greedy shrink: repeatedly move to the first failing shrink candidate
/// until no candidate fails or the step budget runs out. Returns the
/// minimal failing value, its error, and the number of accepted steps.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    prop: &impl Fn(&S::Value) -> Result<(), String>,
    mut current: S::Value,
    mut current_err: String,
    max_steps: u32,
) -> (S::Value, String, u32) {
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in strategy.shrink(&current) {
            if let Err(err) = prop(&candidate) {
                current = candidate;
                current_err = err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_err, steps)
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Uniform integers in a half-open range; shrinks toward 0 when the range
/// contains it, else toward the lower bound.
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    lo: T,
    hi: T,
}

macro_rules! int_strategy {
    ($ty:ty, $ctor:ident, $rng_method:ident) => {
        /// Uniform values in `range` (half-open), shrinking toward the
        /// origin (0 if contained, else the lower bound).
        pub fn $ctor(range: std::ops::Range<$ty>) -> IntRange<$ty> {
            assert!(range.start < range.end, "empty range {range:?}");
            IntRange { lo: range.start, hi: range.end }
        }

        impl Strategy for IntRange<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.$rng_method(self.lo..self.hi)
            }

            fn shrink(&self, &value: &$ty) -> Vec<$ty> {
                let origin: $ty = if self.lo <= 0 && 0 < self.hi { 0 } else { self.lo };
                if value == origin {
                    return Vec::new();
                }
                let mut out = vec![origin];
                // Halfway toward the origin, then one step toward it:
                // fast coarse moves first, a fine move to finish.
                let half = value - (value - origin) / 2;
                if half != value && half != origin {
                    out.push(half);
                }
                let step = if value > origin { value - 1 } else { value + 1 };
                if step != origin && step != half {
                    out.push(step);
                }
                out
            }
        }
    };
}

int_strategy!(i64, i64s, i64_in);
int_strategy!(usize, usizes, usize_in);

/// `i32` values in `range`, via the `i64` machinery.
pub fn i32s(range: std::ops::Range<i32>) -> MapI64ToI32 {
    MapI64ToI32(i64s(range.start as i64..range.end as i64))
}

/// See [`i32s`].
#[derive(Debug, Clone)]
pub struct MapI64ToI32(IntRange<i64>);

impl Strategy for MapI64ToI32 {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        self.0.generate(rng) as i32
    }
    fn shrink(&self, &value: &i32) -> Vec<i32> {
        self.0.shrink(&(value as i64)).into_iter().map(|v| v as i32).collect()
    }
}

/// Uniform `f64` in a half-open range; shrinks toward 0 (if contained)
/// or the lower bound, then through halving.
#[derive(Debug, Clone)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform finite `f64` values in `range`.
pub fn f64s(range: std::ops::Range<f64>) -> F64Range {
    assert!(range.start < range.end, "empty range {range:?}");
    F64Range { lo: range.start, hi: range.end }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.lo..self.hi)
    }

    fn shrink(&self, &value: &f64) -> Vec<f64> {
        let origin = if self.lo <= 0.0 && 0.0 < self.hi { 0.0 } else { self.lo };
        if value == origin {
            return Vec::new();
        }
        let mut out = vec![origin];
        let half = origin + (value - origin) / 2.0;
        if half != value && half != origin {
            out.push(half);
        }
        let trunc = value.trunc();
        if trunc != value && trunc != origin && (self.lo..self.hi).contains(&trunc) {
            out.push(trunc);
        }
        out
    }
}

/// Fair booleans; `true` shrinks to `false`.
#[derive(Debug, Clone)]
pub struct Bools;

/// Fair booleans; `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
    fn shrink(&self, &value: &bool) -> Vec<bool> {
        if value { vec![false] } else { Vec::new() }
    }
}

/// A strategy from a plain closure — no shrinking. The porcelain for
/// domain-specific generators (operator inputs, NAS workloads).
pub struct FromFn<F>(F);

/// Wraps `f` as a [`Strategy`] with no shrink candidates.
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut TestRng) -> T,
{
    FromFn(f)
}

impl<T, F> Strategy for FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Vectors of values from an element strategy, with a length range.
///
/// Shrinks by dropping halves, then single elements, then shrinking
/// individual elements — always respecting the minimum length.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// Vectors of `elem` values with length in `len` (half-open).
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range {len:?}");
    VecOf { elem, min_len: len.start, max_len: len.end }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.min_len..self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks first: halves, then single removals.
        if n > self.min_len {
            if self.min_len == 0 && n > 1 {
                out.push(Vec::new());
            }
            let half = n / 2;
            if half >= self.min_len && half < n {
                out.push(value[..half].to_vec());
                out.push(value[n - half..].to_vec());
            }
            if n > self.min_len {
                for i in 0..n {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // Element shrinks: first failing candidate wins, so propose the
        // per-position simplifications one at a time.
        for (i, x) in value.iter().enumerate() {
            for shrunk in self.elem.shrink(x) {
                let mut v = value.clone();
                v[i] = shrunk;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for shrunk in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = shrunk;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Fails the enclosing property (a closure returning
/// `Result<(), String>`) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the two values differ, reporting
/// both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n    left: {:?}\n   right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(cases: u32) -> Config {
        // Bypass env overrides so the suite is hermetic even when the
        // outer invocation sets GV_TESTKIT_SEED.
        Config { cases, seed: DEFAULT_SEED, max_shrink_steps: 1000, replay: None }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = std::cell::Cell::new(0u32);
        check("always_true", &plain(64), &i64s(-100..100), |_| {
            ran.set(ran.get() + 1);
            Ok(())
        });
        assert_eq!(ran.get(), 64);
    }

    #[test]
    fn failing_property_panics_with_seed_and_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            check("find_forty_two_or_more", &plain(256), &i64s(0..1000), |&v| {
                if v >= 42 {
                    Err(format!("hit {v}"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("GV_TESTKIT_SEED="), "{msg}");
        // Greedy shrinking must land on the boundary value.
        assert!(msg.contains("minimal input: 42"), "{msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_both_length_and_elements() {
        let result = std::panic::catch_unwind(|| {
            check(
                "all_elements_small",
                &plain(256),
                &vec_of(i64s(-50..50), 0..40),
                |v| {
                    if v.iter().any(|&x| x >= 20) {
                        Err("element too large".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy removal + element shrinking minimizes to exactly one
        // element at the threshold: [20].
        assert!(msg.contains("minimal input: [20]"), "{msg}");
    }

    #[test]
    fn replay_reproduces_the_failing_case() {
        // First find a failing case seed the normal way.
        let result = std::panic::catch_unwind(|| {
            check("replayable", &plain(64), &i64s(0..100), |&v| {
                if v >= 90 {
                    Err("big".into())
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        let seed_hex = msg
            .split("case seed ")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).unwrap();
        // Replaying with that seed fails on the very first (only) case.
        let replay_cfg = Config { replay: Some(seed), ..plain(64) };
        let replayed = std::panic::catch_unwind(|| {
            check("replayable", &replay_cfg, &i64s(0..100), |&v| {
                if v >= 90 {
                    Err("big".into())
                } else {
                    Ok(())
                }
            });
        });
        assert!(replayed.is_err(), "replay must reproduce the failure");
    }

    #[test]
    fn case_seeds_differ_across_names_and_indices() {
        let a = case_seed(1, "prop_a", 0);
        let b = case_seed(1, "prop_b", 0);
        let c = case_seed(1, "prop_a", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_macros_return_errors_not_panics() {
        let f = |x: i64| -> Result<(), String> {
            prop_assert!(x < 10, "x too big: {x}");
            prop_assert_eq!(x % 2, 0);
            Ok(())
        };
        assert!(f(4).is_ok());
        assert!(f(12).unwrap_err().contains("x too big"));
        assert!(f(3).unwrap_err().contains("left"));
    }

    #[test]
    fn tuple_strategies_shrink_componentwise() {
        let s = (i64s(0..100), i64s(0..100));
        let candidates = s.shrink(&(10, 20));
        assert!(candidates.contains(&(0, 20)));
        assert!(candidates.contains(&(10, 0)));
    }
}
