//! Aggregated global-view reductions and scans (paper §2.1 applied to the
//! global-view layer): `m` independent reductions computed at once, with
//! all `m` states shipped in a single message per tree edge.

use gv_core::agg::accumulate_rows;
use gv_core::op::{ReduceScanOp, ScanKind};
use gv_core::split::{split_vec_segments, unsplit_vec_segments};
use gv_msgpass::Comm;

/// Accumulates this rank's rows into one state per slot and charges the
/// modeled compute.
fn accumulate_rows_local<Op: ReduceScanOp>(
    comm: &Comm,
    op: &Op,
    rows: &[&[Op::In]],
) -> Vec<Op::State> {
    let width = rows.first().map_or(0, |r| r.len());
    let mut states: Vec<Op::State> = (0..width).map(|_| op.ident()).collect();
    accumulate_rows(op, &mut states, rows);
    comm.advance((rows.len() * width) as u64 * op.accum_ops());
    states
}

#[allow(clippy::ptr_arg)] // passed where Fn(&Vec<State>) -> usize is expected
fn states_bytes<Op: ReduceScanOp>(op: &Op, states: &Vec<Op::State>) -> usize {
    states.iter().map(|s| op.wire_size(s)).sum()
}

fn combine_states<'a, Op: ReduceScanOp>(
    comm: &'a Comm,
    op: &'a Op,
) -> impl FnMut(Vec<Op::State>, Vec<Op::State>) -> Vec<Op::State> + 'a {
    move |mut earlier, later| {
        assert_eq!(
            earlier.len(),
            later.len(),
            "aggregated reduction requires the same row width on every rank"
        );
        // Charge the modeled compute for every slot up front (the same
        // total the per-slot loop charged), then let the operator combine
        // the whole slot vector at once — the elementwise block kernel for
        // built-ins, the per-slot `combine` loop otherwise.
        let modeled: u64 = later.iter().map(|b| op.combine_ops(b)).sum();
        comm.advance(modeled);
        op.combine_slots(&mut earlier, later);
        earlier
    }
}

/// Element-wise aggregated global-view reduction: slot `j` of the result is
/// the reduction of slot `j` across all rows of all ranks (rows ordered by
/// rank, then by local row index). Result on every rank.
pub fn reduce_all_elementwise<Op>(comm: &Comm, op: &Op, rows: &[&[Op::In]]) -> Vec<Op::Out>
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    let states = accumulate_rows_local(comm, op, rows);
    // Slot-wise combining inherits the operator's commutativity.
    let combined = comm.allreduce(
        states,
        Op::COMMUTATIVE,
        |s| states_bytes(op, s),
        combine_states(comm, op),
    );
    combined.into_iter().map(|s| op.red_gen(s)).collect()
}

/// Element-wise aggregated global-view scan: output row `i`, slot `j` is
/// the scan of slot `j` over all earlier rows (earlier ranks' rows
/// included). Each rank receives outputs for its own rows.
///
/// The aggregate state is a `Vec` of per-slot states combined slot-wise,
/// so contiguous slot ranges combine independently — every aggregated
/// scan is splittable regardless of the operator, and the cross-rank
/// prefix goes through the splittable selector entry (eligible for the
/// pipelined chain schedule when the aggregate is wide).
pub fn scan_elementwise<Op>(
    comm: &Comm,
    op: &Op,
    rows: &[&[Op::In]],
    kind: ScanKind,
) -> Vec<Vec<Op::Out>>
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    let width = rows.first().map_or(0, |r| r.len());
    let states = accumulate_rows_local(comm, op, rows);
    let mut running = comm.scan_exclusive_splittable(
        states,
        || (0..width).map(|_| op.ident()).collect(),
        split_vec_segments,
        unsplit_vec_segments,
        |s| states_bytes(op, s),
        combine_states(comm, op),
    );
    let mut out = Vec::with_capacity(rows.len());
    // Slots are independent, so generate-then-accumulate can run as two
    // whole-row passes (letting `accum_slots` use the elementwise kernel)
    // instead of interleaving per slot — the per-slot result is identical.
    for row in rows {
        let out_row: Vec<Op::Out> = match kind {
            ScanKind::Exclusive => {
                let out_row = running.iter().zip(row.iter()).map(|(s, x)| op.scan_gen(s, x)).collect();
                op.accum_slots(&mut running, row);
                out_row
            }
            ScanKind::Inclusive => {
                op.accum_slots(&mut running, row);
                running.iter().zip(row.iter()).map(|(s, x)| op.scan_gen(s, x)).collect()
            }
        };
        out.push(out_row);
    }
    comm.advance((rows.len() * width) as u64 * (op.accum_ops() + 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_core::ops::builtin::{min, sum};
    use gv_msgpass::Runtime;

    #[test]
    fn aggregated_reduce_matches_per_column_sequential() {
        // 4 ranks × 3 rows × 5 slots.
        let p = 4;
        let outcome = Runtime::new(p).run(|comm| {
            let rows: Vec<Vec<i64>> = (0..3)
                .map(|i| {
                    (0..5)
                        .map(|j| ((comm.rank() * 3 + i) * 5 + j) as i64 % 17 - 8)
                        .collect()
                })
                .collect();
            let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            reduce_all_elementwise(comm, &min::<i64>(), &row_refs)
        });
        // Oracle: all 12 rows in rank order.
        let all_rows: Vec<Vec<i64>> = (0..12)
            .map(|r| (0..5).map(|j| (r * 5 + j) as i64 % 17 - 8).collect())
            .collect();
        for slot in 0..5 {
            let column: Vec<i64> = all_rows.iter().map(|r| r[slot]).collect();
            let expected = gv_core::seq::reduce(&min::<i64>(), &column);
            for res in &outcome.results {
                assert_eq!(res[slot], expected, "slot {slot}");
            }
        }
    }

    #[test]
    fn aggregated_scan_matches_per_column_sequential() {
        let p = 3;
        let all_rows: Vec<Vec<i64>> = (0..6)
            .map(|r| (0..4).map(|j| (r * 4 + j) as i64 % 11 - 5).collect())
            .collect();
        let outcome = Runtime::new(p).run(|comm| {
            let mine: Vec<&[i64]> = all_rows[comm.rank() * 2..comm.rank() * 2 + 2]
                .iter()
                .map(|r| r.as_slice())
                .collect();
            scan_elementwise(comm, &sum::<i64>(), &mine, ScanKind::Inclusive)
        });
        let flat: Vec<Vec<i64>> = outcome.results.into_iter().flatten().collect();
        for slot in 0..4 {
            let column: Vec<i64> = all_rows.iter().map(|r| r[slot]).collect();
            let expected = gv_core::seq::scan(&sum::<i64>(), &column, ScanKind::Inclusive);
            let got: Vec<i64> = flat.iter().map(|r| r[slot]).collect();
            assert_eq!(got, expected, "slot {slot}");
        }
    }

    #[test]
    fn wide_aggregated_scan_uses_the_pipelined_chain() {
        use gv_msgpass::ScanAlgorithm;
        // 16 Ki slots × 8 B of aggregate state: the splittable selector
        // must route the cross-rank prefix through the pipelined chain.
        let slots = 16 * 1024usize;
        let outcome = Runtime::new(8).run(move |comm| {
            let row: Vec<i64> = (0..slots).map(|j| (comm.rank() * slots + j) as i64).collect();
            let rows: Vec<&[i64]> = vec![&row];
            scan_elementwise(comm, &sum::<i64>(), &rows, ScanKind::Inclusive)
        });
        assert_eq!(
            outcome.stats.scan_algorithm_calls(ScanAlgorithm::PipelinedChain),
            8
        );
        // Spot-check the last rank's row against the column oracle.
        let last = &outcome.results[7][0];
        for j in [0usize, 1, slots - 1] {
            let expected: i64 = (0..8).map(|r| (r * slots + j) as i64).sum();
            assert_eq!(last[j], expected, "slot {j}");
        }
    }

    #[test]
    fn aggregation_beats_separate_reductions_on_modeled_time() {
        // TXT-AGG at the global-view layer: 32 separate single-slot
        // reductions vs one 32-slot aggregated reduction.
        let slots = 32usize;
        let separate = Runtime::new(8).run(|comm| {
            for j in 0..slots {
                let row = [(comm.rank() + j) as i64];
                crate::reduce::reduce_all(comm, &min::<i64>(), &row);
            }
        });
        let aggregated = Runtime::new(8).run(|comm| {
            let row: Vec<i64> = (0..slots).map(|j| (comm.rank() + j) as i64).collect();
            let rows: Vec<&[i64]> = vec![&row];
            reduce_all_elementwise(comm, &min::<i64>(), &rows);
        });
        assert!(
            aggregated.modeled_seconds < separate.modeled_seconds / 4.0,
            "aggregated={} separate={}",
            aggregated.modeled_seconds,
            separate.modeled_seconds
        );
        assert!(aggregated.stats.messages < separate.stats.messages / 4);
    }
}
