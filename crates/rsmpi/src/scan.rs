//! Global-view scans over the message-passing substrate — paper Listing 3,
//! distributed. This is the paper's headline novelty: "the first
//! user-defined scan formulation for higher level languages".
//!
//! ```text
//! forall processors q:   (accumulate phase, with pre/post hooks)
//!     s_q ← accumulate(in_q)
//! LOCAL_XSCAN(f_ident, f_combine, s_q)
//! forall processors q:   (rescan phase)
//!     for i in 0..n−1:
//!         out_q(i) ← f_scan_gen(s_q, in_q(i))
//!         s_q ← f_accum(s_q, in_q(i))
//! ```
//!
//! "By interchanging lines 12 and 13, this algorithm is made to compute an
//! inclusive scan" — which is what [`ScanKind::Inclusive`] does.

use gv_core::op::{ReduceScanOp, ScanKind};
use gv_msgpass::Comm;

use crate::reduce::{accumulate_local, combining};

/// Global-view scan: each rank passes its local block and receives the
/// scan outputs for exactly its block's positions.
pub fn scan<Op>(comm: &Comm, op: &Op, local: &[Op::In], kind: ScanKind) -> Vec<Op::Out>
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    scan_with_block_total(comm, op, local, kind).0
}

/// Scan that also returns the total reduction state (the running state
/// after the last local element on the last rank is the global total;
/// every rank returns its own block-final state).
///
/// The cross-rank prefix runs as a dedicated exclusive scan, so it is
/// accounted as one `Exscan` call per rank (see the `scan_both`
/// convention in `gv-msgpass`).
pub fn scan_with_block_total<Op>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    kind: ScanKind,
) -> (Vec<Op::Out>, Op::State)
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    // Phase 1 (Listing 3 lines 1–8): local accumulate, hooks included.
    let state = accumulate_local(comm, op, local);

    // Line 9: LOCAL_XSCAN of the per-rank states across ranks.
    let mut running = comm.scan_exclusive(
        state,
        || op.ident(),
        |s| op.wire_size(s),
        combining(comm, op),
    );

    // Lines 10–13: rescan the local block from the incoming prefix state.
    let mut out = Vec::with_capacity(local.len());
    for x in local {
        match kind {
            ScanKind::Exclusive => {
                out.push(op.scan_gen(&running, x));
                op.accum(&mut running, x);
            }
            ScanKind::Inclusive => {
                op.accum(&mut running, x);
                out.push(op.scan_gen(&running, x));
            }
        }
    }
    comm.advance(local.len() as u64 * (op.accum_ops() + 1));
    (out, running)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_core::ops::builtin::sum;
    use gv_core::ops::counts::BucketRank;
    use gv_core::ops::sorted::Sorted;
    use gv_executor::chunk_ranges;
    use gv_msgpass::Runtime;

    fn check_against_sequential<Op>(op_factory: impl Fn() -> Op + Sync, data: &[Op::In], kind: ScanKind)
    where
        Op: ReduceScanOp,
        Op::In: Clone + Sync,
        Op::State: Clone + Send + 'static,
        Op::Out: PartialEq + std::fmt::Debug + Send,
    {
        let expected = gv_core::seq::scan(&op_factory(), data, kind);
        for p in [1usize, 2, 3, 5, 8] {
            let chunks: Vec<Vec<Op::In>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                scan(comm, &op_factory(), &chunks[comm.rank()], kind)
            });
            let flattened: Vec<Op::Out> = outcome.results.into_iter().flatten().collect();
            assert_eq!(flattened, expected, "p={p} kind={kind:?}");
        }
    }

    #[test]
    fn distributed_sum_scan_matches_sequential() {
        let data: Vec<i64> = (0..200).map(|i| (i * 13) % 23 - 11).collect();
        check_against_sequential(sum::<i64>, &data, ScanKind::Inclusive);
        check_against_sequential(sum::<i64>, &data, ScanKind::Exclusive);
    }

    #[test]
    fn paper_exclusive_scan_through_rsmpi() {
        let data: Vec<i64> = vec![6, 7, 6, 3, 8, 2, 8, 4, 8, 3];
        let chunks: Vec<Vec<i64>> = chunk_ranges(10, 5).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(5).run(|comm| {
            scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Exclusive)
        });
        let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 6, 13, 19, 22, 30, 32, 40, 44, 52]);
    }

    #[test]
    fn particle_ranking_scan_from_the_paper() {
        // §3.1.3: octant ranking of [6,7,6,3,8,2,8,4,8,3] (1-based octants).
        let particles: Vec<usize> = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]
            .iter()
            .map(|&o| o - 1)
            .collect();
        let chunks: Vec<Vec<usize>> =
            chunk_ranges(particles.len(), 3).map(|r| particles[r].to_vec()).collect();
        let outcome = Runtime::new(3).run(|comm| {
            scan(comm, &BucketRank::new(8), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<u64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn noncommutative_sorted_scan_matches_sequential() {
        let mut data: Vec<i64> = (0..60).collect();
        data.swap(40, 41);
        let op = || Sorted::<i64>::new();
        let expected = gv_core::seq::scan(&op(), &data, ScanKind::Inclusive);
        let chunks: Vec<Vec<i64>> = chunk_ranges(60, 4).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(4).run(|comm| {
            scan(comm, &op(), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<bool> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn scan_with_block_total_final_state_is_global_total() {
        let data: Vec<i64> = (1..=100).collect();
        let chunks: Vec<Vec<i64>> = chunk_ranges(100, 4).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(4).run(|comm| {
            let (_, total) = scan_with_block_total(
                comm,
                &sum::<i64>(),
                &chunks[comm.rank()],
                ScanKind::Inclusive,
            );
            total
        });
        // Rank q's block-final state is the inclusive prefix through its
        // block; the last rank holds the global total.
        assert_eq!(outcome.results[3], 5050);
    }

    #[test]
    fn empty_blocks_in_scan() {
        let data: Vec<i64> = vec![1, 2, 3];
        let chunks: Vec<Vec<i64>> = chunk_ranges(3, 6).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(6).run(|comm| {
            scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![1, 3, 6]);
    }
}
