//! Global-view scans over the message-passing substrate — paper Listing 3,
//! distributed. This is the paper's headline novelty: "the first
//! user-defined scan formulation for higher level languages".
//!
//! ```text
//! forall processors q:   (accumulate phase, with pre/post hooks)
//!     s_q ← accumulate(in_q)
//! LOCAL_XSCAN(f_ident, f_combine, s_q)
//! forall processors q:   (rescan phase)
//!     for i in 0..n−1:
//!         out_q(i) ← f_scan_gen(s_q, in_q(i))
//!         s_q ← f_accum(s_q, in_q(i))
//! ```
//!
//! "By interchanging lines 12 and 13, this algorithm is made to compute an
//! inclusive scan" — which is what [`ScanKind::Inclusive`] does.

use gv_core::op::{ReduceScanOp, ScanKind};
use gv_core::split::SplittableState;
use gv_msgpass::Comm;

use crate::reduce::{accumulate_local, combining};

/// Global-view scan: each rank passes its local block and receives the
/// scan outputs for exactly its block's positions.
pub fn scan<Op>(comm: &Comm, op: &Op, local: &[Op::In], kind: ScanKind) -> Vec<Op::Out>
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    scan_with_block_total(comm, op, local, kind).0
}

/// Scan that also returns the total reduction state (the running state
/// after the last local element on the last rank is the global total;
/// every rank returns its own block-final state).
///
/// The cross-rank prefix runs as a dedicated exclusive scan, so it is
/// accounted as one `Exscan` call per rank (see the `scan_both`
/// convention in `gv-msgpass`).
pub fn scan_with_block_total<Op>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    kind: ScanKind,
) -> (Vec<Op::Out>, Op::State)
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    // Phase 1 (Listing 3 lines 1–8): local accumulate, hooks included.
    let state = accumulate_local(comm, op, local);

    // Line 9: LOCAL_XSCAN of the per-rank states across ranks.
    let running = comm.scan_exclusive(
        state,
        || op.ident(),
        |s| op.wire_size(s),
        combining(comm, op),
    );

    rescan_block(comm, op, local, kind, running)
}

/// [`scan`] for operators with splittable states: the cross-rank prefix
/// scan is additionally eligible for the pipelined chain schedule, which
/// moves the least aggregate traffic of any scan schedule and overlaps
/// chain latency with bandwidth — the winning choice for large states
/// under the α–β cost model.
pub fn scan_splittable<Op>(comm: &Comm, op: &Op, local: &[Op::In], kind: ScanKind) -> Vec<Op::Out>
where
    Op: SplittableState,
    Op::State: Clone + Send + 'static,
{
    scan_with_block_total_splittable(comm, op, local, kind).0
}

/// [`scan_with_block_total`] for [`SplittableState`] operators (see
/// [`scan_splittable`]).
pub fn scan_with_block_total_splittable<Op>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    kind: ScanKind,
) -> (Vec<Op::Out>, Op::State)
where
    Op: SplittableState,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, op, local);

    let running = comm.scan_exclusive_splittable(
        state,
        || op.ident(),
        |s, parts| op.split_state(s, parts),
        |segments| op.unsplit_state(segments),
        |s| op.wire_size(s),
        combining(comm, op),
    );

    rescan_block(comm, op, local, kind, running)
}

/// Listing 3 lines 10–13: rescan the local block from the incoming
/// exclusive-prefix state, returning the block outputs and the block-final
/// running state. The element loop is the shared `gv-core` rescan (block
/// kernels and all); the modeled cost charged to the clock is unchanged —
/// it counts semantic `accum`/`scan_gen` applications, not wall time, so
/// recorded traces stay bit-identical whichever dispatch fires.
fn rescan_block<Op: ReduceScanOp>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    kind: ScanKind,
    mut running: Op::State,
) -> (Vec<Op::Out>, Op::State) {
    let mut out = Vec::with_capacity(local.len());
    gv_core::op::rescan_block(op, &mut running, local, kind, &mut out);
    comm.advance(local.len() as u64 * (op.accum_ops() + 1));
    (out, running)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_core::ops::builtin::sum;
    use gv_core::ops::counts::BucketRank;
    use gv_core::ops::sorted::Sorted;
    use gv_executor::chunk_ranges;
    use gv_msgpass::Runtime;

    fn check_against_sequential<Op>(op_factory: impl Fn() -> Op + Sync, data: &[Op::In], kind: ScanKind)
    where
        Op: ReduceScanOp,
        Op::In: Clone + Sync,
        Op::State: Clone + Send + 'static,
        Op::Out: PartialEq + std::fmt::Debug + Send,
    {
        let expected = gv_core::seq::scan(&op_factory(), data, kind);
        for p in [1usize, 2, 3, 5, 8] {
            let chunks: Vec<Vec<Op::In>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                scan(comm, &op_factory(), &chunks[comm.rank()], kind)
            });
            let flattened: Vec<Op::Out> = outcome.results.into_iter().flatten().collect();
            assert_eq!(flattened, expected, "p={p} kind={kind:?}");
        }
    }

    #[test]
    fn distributed_sum_scan_matches_sequential() {
        let data: Vec<i64> = (0..200).map(|i| (i * 13) % 23 - 11).collect();
        check_against_sequential(sum::<i64>, &data, ScanKind::Inclusive);
        check_against_sequential(sum::<i64>, &data, ScanKind::Exclusive);
    }

    #[test]
    fn paper_exclusive_scan_through_rsmpi() {
        let data: Vec<i64> = vec![6, 7, 6, 3, 8, 2, 8, 4, 8, 3];
        let chunks: Vec<Vec<i64>> = chunk_ranges(10, 5).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(5).run(|comm| {
            scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Exclusive)
        });
        let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 6, 13, 19, 22, 30, 32, 40, 44, 52]);
    }

    #[test]
    fn particle_ranking_scan_from_the_paper() {
        // §3.1.3: octant ranking of [6,7,6,3,8,2,8,4,8,3] (1-based octants).
        let particles: Vec<usize> = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]
            .iter()
            .map(|&o| o - 1)
            .collect();
        let chunks: Vec<Vec<usize>> =
            chunk_ranges(particles.len(), 3).map(|r| particles[r].to_vec()).collect();
        let outcome = Runtime::new(3).run(|comm| {
            scan(comm, &BucketRank::new(8), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<u64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn noncommutative_sorted_scan_matches_sequential() {
        let mut data: Vec<i64> = (0..60).collect();
        data.swap(40, 41);
        let op = || Sorted::<i64>::new();
        let expected = gv_core::seq::scan(&op(), &data, ScanKind::Inclusive);
        let chunks: Vec<Vec<i64>> = chunk_ranges(60, 4).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(4).run(|comm| {
            scan(comm, &op(), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<bool> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn scan_with_block_total_final_state_is_global_total() {
        let data: Vec<i64> = (1..=100).collect();
        let chunks: Vec<Vec<i64>> = chunk_ranges(100, 4).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(4).run(|comm| {
            let (_, total) = scan_with_block_total(
                comm,
                &sum::<i64>(),
                &chunks[comm.rank()],
                ScanKind::Inclusive,
            );
            total
        });
        // Rank q's block-final state is the inclusive prefix through its
        // block; the last rank holds the global total.
        assert_eq!(outcome.results[3], 5050);
    }

    #[test]
    fn splittable_scan_matches_plain_and_sequential() {
        use gv_core::ops::counts::Counts;
        let particles: Vec<usize> = (0..240).map(|i| (i * 11 + 5) % 16).collect();
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let expected = gv_core::seq::scan(&Counts::new(16), &particles, kind);
            for p in [1usize, 2, 3, 5, 8] {
                let chunks: Vec<Vec<usize>> = chunk_ranges(particles.len(), p)
                    .map(|r| particles[r].to_vec())
                    .collect();
                let outcome = Runtime::new(p).run(|comm| {
                    let op = Counts::new(16);
                    (
                        scan_splittable(comm, &op, &chunks[comm.rank()], kind),
                        scan(comm, &op, &chunks[comm.rank()], kind),
                    )
                });
                let mut split = Vec::new();
                let mut plain = Vec::new();
                for (s, pl) in outcome.results {
                    split.extend(s);
                    plain.extend(pl);
                }
                assert_eq!(split, expected, "splittable p={p} kind={kind:?}");
                assert_eq!(plain, expected, "plain p={p} kind={kind:?}");
            }
        }
    }

    #[test]
    fn splittable_scan_on_bucket_rank_matches_paper_answer() {
        // The §3.1.3 particle ranking again, this time through the
        // splittable prefix path: BucketRank's count-vector state chunks
        // contiguously, so the chain schedule is legal for it.
        let particles: Vec<usize> = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]
            .iter()
            .map(|&o| o - 1)
            .collect();
        let chunks: Vec<Vec<usize>> =
            chunk_ranges(particles.len(), 3).map(|r| particles[r].to_vec()).collect();
        let outcome = Runtime::new(3).run(|comm| {
            scan_splittable(comm, &BucketRank::new(8), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<u64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    }

    #[test]
    fn splittable_scan_picks_pipelined_chain_for_large_states() {
        use gv_msgpass::ScanAlgorithm;
        // 16 Ki buckets × 8 B = 128 KiB of state: far past the chain
        // crossover at p = 8, so the selector must route the prefix scan
        // through the pipelined chain and attribute it in the stats.
        let buckets = 16 * 1024;
        let particles: Vec<usize> = (0..512).map(|i| (i * 131) % buckets).collect();
        let expected =
            gv_core::seq::scan(&BucketRank::new(buckets), &particles, ScanKind::Exclusive);
        let chunks: Vec<Vec<usize>> = chunk_ranges(particles.len(), 8)
            .map(|r| particles[r].to_vec())
            .collect();
        let outcome = Runtime::new(8).run(|comm| {
            scan_splittable(
                comm,
                &BucketRank::new(buckets),
                &chunks[comm.rank()],
                ScanKind::Exclusive,
            )
        });
        let flat: Vec<u64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, expected);
        assert_eq!(
            outcome.stats.scan_algorithm_calls(ScanAlgorithm::PipelinedChain),
            8,
            "every rank should have run the chain schedule once"
        );
        assert_eq!(outcome.stats.scan_algorithm_calls(ScanAlgorithm::RecursiveDoubling), 0);
    }

    #[test]
    fn empty_blocks_in_scan() {
        let data: Vec<i64> = vec![1, 2, 3];
        let chunks: Vec<Vec<i64>> = chunk_ranges(3, 6).map(|r| data[r].to_vec()).collect();
        let outcome = Runtime::new(6).run(|comm| {
            scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, vec![1, 3, 6]);
    }
}
