//! # gv-rsmpi — RSMPI: global-view reductions and scans for message passing
//!
//! The paper's §4 contribution: "RSMPI (Reduce and Scan MPI) … makes it
//! possible to build up a library of operators that compute an entire
//! reduction or scan, not just the combine portion." Where the paper uses
//! a Perl preprocessor to inline operator definitions into C+MPI, Rust's
//! generics do the same job natively: any [`gv_core::ReduceScanOp`] runs
//! over the message-passing substrate unchanged.
//!
//! Each rank passes its contiguous *local block* of the conceptual global
//! array; the accumulate phase runs locally, and only the (often tiny)
//! operator states cross the network.
//!
//! ```
//! use gv_core::prelude::*;
//! use gv_msgpass::Runtime;
//!
//! // The paper's call-site: `minimums = mink(integer, 10) reduce A;`
//! let outcome = Runtime::new(4).run(|comm| {
//!     // Rank q holds 25 values of a conceptual 100-element array.
//!     let local: Vec<i64> = (0..25).map(|i| (comm.rank() * 25 + i) as i64).collect();
//!     gv_rsmpi::reduce_all(comm, &MinK::<i64>::new(10), &local)
//! });
//! assert_eq!(outcome.results[0], (0..10).collect::<Vec<i64>>());
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod dist;
pub mod reduce;
pub mod scan;

pub use agg::{reduce_all_elementwise, scan_elementwise};
pub use dist::DistVector;
pub use reduce::{
    ireduce_all, reduce, reduce_all, reduce_all_claiming_commutativity, reduce_all_from_iter,
    reduce_all_from_iter_splittable, reduce_all_splittable, reduce_all_with_branching,
    ReduceAllRequest,
};
pub use scan::{scan, scan_with_block_total};
