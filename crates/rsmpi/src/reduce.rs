//! Global-view reductions over the message-passing substrate — paper
//! Listing 2, distributed.
//!
//! ```text
//! forall processors q in 0..p−1
//!     s_q ← f_ident()
//!     if n > 0: s_q ← f_pre_accum(s_q, in_q(0))
//!     for i in 0..n−1: s_q ← f_accum(s_q, in_q(i))
//!     if n > 0: s_q ← f_post_accum(s_q, in_q(n−1))
//! LOCAL_REDUCE(f_combine, s_q)
//! forall processors q: out_q ← f_red_gen(s_q)
//! ```
//!
//! Each rank passes its *local block* of the conceptual global array; the
//! accumulate phase runs locally (charged to the virtual clock at
//! [`ReduceScanOp::accum_ops`] per element), the states cross the network
//! with [`ReduceScanOp::wire_size`] modeled bytes, and combining respects
//! rank order whenever the operator is non-commutative.

use std::rc::Rc;

use gv_core::op::{accumulate_block, ReduceScanOp};
use gv_core::split::SplittableState;
use gv_msgpass::{Comm, Request, RequestError};

/// Runs the accumulate phase of Listing 2 for this rank's block and
/// charges its modeled compute cost.
pub(crate) fn accumulate_local<Op: ReduceScanOp>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
) -> Op::State {
    let mut state = op.ident();
    accumulate_block(op, &mut state, local);
    comm.advance(local.len() as u64 * op.accum_ops());
    state
}

/// Builds the `(earlier, later) → earlier⊕later` closure handed to the
/// local-view combine tree, charging combine cost to the virtual clock.
pub(crate) fn combining<'a, Op: ReduceScanOp>(
    comm: &'a Comm,
    op: &'a Op,
) -> impl FnMut(Op::State, Op::State) -> Op::State + 'a {
    move |mut earlier, later| {
        comm.advance(op.combine_ops(&later));
        op.combine(&mut earlier, later);
        earlier
    }
}

/// Runs the accumulate phase over a streamed iterator of inputs and
/// charges its modeled compute cost.
pub(crate) fn accumulate_local_from_iter<Op, I>(comm: &Comm, op: &Op, values: I) -> Op::State
where
    Op: ReduceScanOp,
    I: IntoIterator<Item = Op::In>,
{
    let mut state = op.ident();
    let mut iter = values.into_iter().peekable();
    if let Some(first) = iter.peek() {
        op.pre_accum(&mut state, first);
    }
    let mut count = 0u64;
    let mut last: Option<Op::In> = None;
    for x in iter {
        op.accum(&mut state, &x);
        count += 1;
        last = Some(x);
    }
    if let Some(l) = &last {
        op.post_accum(&mut state, l);
    }
    comm.advance(count * op.accum_ops());
    state
}

/// Cross-rank combine of an already-accumulated state: cost-selected
/// allreduce with the operator's commutativity flag plumbed through —
/// the paper's point that the declaration is the runtime's license to
/// reorder combining.
pub(crate) fn allreduce_state<Op>(comm: &Comm, op: &Op, state: Op::State) -> Op::State
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    comm.allreduce(
        state,
        Op::COMMUTATIVE,
        |s| op.wire_size(s),
        combining(comm, op),
    )
}

/// Like [`allreduce_state`] but for [`SplittableState`] operators: the
/// selector may additionally choose the bandwidth-optimal reduce-scatter
/// + allgather schedule (only when the operator is also commutative).
pub(crate) fn allreduce_state_splittable<Op>(comm: &Comm, op: &Op, state: Op::State) -> Op::State
where
    Op: SplittableState,
    Op::State: Clone + Send + 'static,
{
    comm.allreduce_splittable(
        state,
        Op::COMMUTATIVE,
        |s, parts| op.split_state(s, parts),
        |segments| op.unsplit_state(segments),
        |s| op.wire_size(s),
        combining(comm, op),
    )
}

/// Global-view reduction delivering the result to every rank — the paper's
/// `RSMPI_Reduceall`.
///
/// `local` is this rank's contiguous block of the conceptual global array
/// (blocks are concatenated in rank order).
pub fn reduce_all<Op>(comm: &Comm, op: &Op, local: &[Op::In]) -> Op::Out
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, op, local);
    op.red_gen(allreduce_state(comm, op, state))
}

/// [`reduce_all`] for operators with splittable states: eligible for the
/// reduce-scatter + allgather schedule when the cost model favors it.
pub fn reduce_all_splittable<Op>(comm: &Comm, op: &Op, local: &[Op::In]) -> Op::Out
where
    Op: SplittableState,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, op, local);
    op.red_gen(allreduce_state_splittable(comm, op, state))
}

/// [`reduce_all`] over a streamed local block: the paper's RSMPI call
/// sites pass an *iterator* describing the values each processor
/// accumulates ("the programmer first defines an iterator to describe the
/// values passed to the accumulate function"), so large conceptual arrays
/// — e.g. `(value, global_index)` pairs over a grid — never need to be
/// materialized.
pub fn reduce_all_from_iter<Op, I>(comm: &Comm, op: &Op, values: I) -> Op::Out
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
    I: IntoIterator<Item = Op::In>,
{
    let state = accumulate_local_from_iter(comm, op, values);
    op.red_gen(allreduce_state(comm, op, state))
}

/// [`reduce_all_from_iter`] for operators with splittable states.
pub fn reduce_all_from_iter_splittable<Op, I>(comm: &Comm, op: &Op, values: I) -> Op::Out
where
    Op: SplittableState,
    Op::State: Clone + Send + 'static,
    I: IntoIterator<Item = Op::In>,
{
    let state = accumulate_local_from_iter(comm, op, values);
    op.red_gen(allreduce_state_splittable(comm, op, state))
}

/// An in-flight [`ireduce_all`]: the cross-rank combine is parked in the
/// rank's progress engine; `wait`/`test` resolve it and apply the
/// operator's `red_gen` to the combined state.
pub struct ReduceAllRequest<Op: ReduceScanOp> {
    inner: Request<Op::State>,
    op: Rc<Op>,
}

impl<Op: ReduceScanOp> ReduceAllRequest<Op>
where
    Op::State: 'static,
{
    /// Blocks (driving the progress engine) until the reduction
    /// completes, then generates the output.
    pub fn wait(&mut self) -> Result<Op::Out, RequestError> {
        self.inner.wait().map(|s| self.op.red_gen(s))
    }

    /// Polls once without blocking: `Ok(Some(out))` when complete.
    pub fn test(&mut self) -> Result<Option<Op::Out>, RequestError> {
        Ok(self.inner.test()?.map(|s| self.op.red_gen(s)))
    }
}

/// Non-blocking [`reduce_all`]: the accumulate phase still runs inline
/// (it is local compute), but the cross-rank combine returns immediately
/// as a request, letting the caller overlap further accumulation or
/// independent collectives — MPI's `MPI_Iallreduce` shape lifted to
/// user-defined operators. The operator moves into the request
/// (`'static` closures cannot borrow it), so pass it by value.
pub fn ireduce_all<Op>(comm: &Comm, op: Op, local: &[Op::In]) -> ReduceAllRequest<Op>
where
    Op: ReduceScanOp + 'static,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, &op, local);
    let op = Rc::new(op);
    let handle = comm.clone_handle();
    let bytes_op = Rc::clone(&op);
    let combine_op = Rc::clone(&op);
    let inner = comm.iallreduce(
        state,
        Op::COMMUTATIVE,
        move |s| bytes_op.wire_size(s),
        move |mut earlier, later| {
            handle.advance(combine_op.combine_ops(&later));
            combine_op.combine(&mut earlier, later);
            earlier
        },
    );
    ReduceAllRequest { inner, op }
}

/// Global-view reduction delivering the result to `root` only — the
/// paper's `RSMPI_Reduce`. Returns `Some(out)` at the root, `None`
/// elsewhere.
pub fn reduce<Op>(comm: &Comm, root: usize, op: &Op, local: &[Op::In]) -> Option<Op::Out>
where
    Op: ReduceScanOp,
    Op::State: Send + 'static,
{
    let state = accumulate_local(comm, op, local);
    comm.reduce(root, state, |s| op.wire_size(s), combining(comm, op))
        .map(|s| op.red_gen(s))
}

/// Like [`reduce_all`] but with an explicit combine-tree branching factor,
/// honouring [`ReduceScanOp::COMMUTATIVE`] in the combining schedule (the
/// TXT-COMM ablation knob). The result lands on every rank.
pub fn reduce_all_with_branching<Op>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    branching: usize,
) -> Op::Out
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, op, local);
    let at_zero = comm.reduce_with_branching(
        0,
        state,
        Op::COMMUTATIVE,
        branching,
        |s| op.wire_size(s),
        combining(comm, op),
    );
    let combined = comm.bcast(0, at_zero);
    op.red_gen(combined)
}

/// Variant of [`reduce_all_with_branching`] that lets the caller *override*
/// the operator's commutativity declaration. This reproduces the paper's
/// §4.1 experiment: "we flagged the \[sorted\] reduction as commutative. This
/// resulted in no speedup, though the program did fail to verify that the
/// array was sorted (as expected)."
pub fn reduce_all_claiming_commutativity<Op>(
    comm: &Comm,
    op: &Op,
    local: &[Op::In],
    branching: usize,
    claim_commutative: bool,
) -> Op::Out
where
    Op: ReduceScanOp,
    Op::State: Clone + Send + 'static,
{
    let state = accumulate_local(comm, op, local);
    let at_zero = comm.reduce_with_branching(
        0,
        state,
        claim_commutative,
        branching,
        |s| op.wire_size(s),
        combining(comm, op),
    );
    let combined = comm.bcast(0, at_zero);
    op.red_gen(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_core::ops::builtin::{max, min, sum};
    use gv_core::ops::mink::MinK;
    use gv_core::ops::sorted::Sorted;
    use gv_executor::chunk_ranges;
    use gv_msgpass::Runtime;

    /// Distributes `data` over `p` ranks in contiguous blocks and runs `f`.
    fn blocks(data: &[i64], p: usize) -> Vec<Vec<i64>> {
        chunk_ranges(data.len(), p)
            .map(|r| data[r].to_vec())
            .collect()
    }

    #[test]
    fn distributed_sum_matches_sequential_for_all_rank_counts() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 37) % 211 - 100).collect();
        let expected = gv_core::seq::reduce(&sum::<i64>(), &data);
        for p in [1usize, 2, 3, 7, 16] {
            let chunks = blocks(&data, p);
            let outcome = Runtime::new(p).run(|comm| {
                reduce_all(comm, &sum::<i64>(), &chunks[comm.rank()])
            });
            assert_eq!(outcome.results, vec![expected; p], "p={p}");
        }
    }

    #[test]
    fn distributed_mink_matches_sequential() {
        let data: Vec<i64> = (0..500).map(|i| (i * 67 + 13) % 499).collect();
        let op = MinK::<i64>::new(10);
        let expected = gv_core::seq::reduce(&op, &data);
        for p in [1usize, 4, 9] {
            let chunks = blocks(&data, p);
            let outcome = Runtime::new(p).run(|comm| {
                reduce_all(comm, &MinK::<i64>::new(10), &chunks[comm.rank()])
            });
            for got in outcome.results {
                assert_eq!(got, expected, "p={p}");
            }
        }
    }

    #[test]
    fn distributed_sorted_detects_cross_rank_violations() {
        let mut data: Vec<i64> = (0..256).collect();
        for p in [2usize, 5, 8] {
            let chunks = blocks(&data, p);
            let ok = Runtime::new(p).run(|comm| {
                reduce_all(comm, &Sorted::<i64>::new(), &chunks[comm.rank()])
            });
            assert_eq!(ok.results, vec![true; p]);
        }
        // Break sortedness exactly at a 4-rank block boundary (element 64).
        data.swap(63, 64);
        let chunks = blocks(&data, 4);
        let bad = Runtime::new(4).run(|comm| {
            reduce_all(comm, &Sorted::<i64>::new(), &chunks[comm.rank()])
        });
        assert_eq!(bad.results, vec![false; 4]);
    }

    #[test]
    fn rooted_reduce_only_lands_on_root() {
        let data: Vec<i64> = (0..64).collect();
        let chunks = blocks(&data, 4);
        let outcome = Runtime::new(4).run(|comm| {
            reduce(comm, 2, &max::<i64>(), &chunks[comm.rank()])
        });
        for (rank, res) in outcome.results.into_iter().enumerate() {
            assert_eq!(res, (rank == 2).then_some(63));
        }
    }

    #[test]
    fn branching_variants_agree_on_value() {
        let data: Vec<i64> = (0..300).map(|i| (i * 91) % 157).collect();
        let expected = gv_core::seq::reduce(&min::<i64>(), &data);
        for branching in [2usize, 4, 8] {
            let chunks = blocks(&data, 8);
            let outcome = Runtime::new(8).run(|comm| {
                reduce_all_with_branching(comm, &min::<i64>(), &chunks[comm.rank()], branching)
            });
            assert_eq!(outcome.results, vec![expected; 8]);
        }
    }

    #[test]
    fn falsely_claiming_commutativity_breaks_sorted() {
        // Paper §4.1: flagging the non-commutative sorted reduction as
        // commutative makes verification fail (combining out of order).
        // With availability-order combining the wrong answer is only
        // *possible*, not guaranteed; we force it by staggering rank
        // speeds so a later rank's state arrives first.
        let data: Vec<i64> = (0..64).collect(); // perfectly sorted
        let chunks = blocks(&data, 8);
        let outcome = Runtime::new(8).run(|comm| {
            // Make low ranks slow so high-rank states are available first
            // at the k-ary root.
            comm.advance((8 - comm.rank() as u64) * 1_000_000);
            reduce_all_claiming_commutativity(
                comm,
                &Sorted::<i64>::new(),
                &chunks[comm.rank()],
                8,
                true,
            )
        });
        assert_eq!(
            outcome.results,
            vec![false; 8],
            "out-of-order combining must make the sorted check fail"
        );
    }

    #[test]
    fn splittable_reduce_all_matches_plain_reduce_all() {
        use gv_core::ops::counts::Counts;
        use gv_core::ops::topk::TopBottomK;
        let particles: Vec<usize> = (0..400).map(|i| (i * 7 + 3) % 16).collect();
        let samples: Vec<(f64, u64)> = (0..300u64)
            .map(|i| ((((i * 193) % 101) as f64) / 101.0, i))
            .collect();
        for p in [1usize, 2, 5, 8, 9] {
            let counts_chunks: Vec<Vec<usize>> = chunk_ranges(particles.len(), p)
                .map(|r| particles[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                let op = Counts::new(16);
                let split = reduce_all_splittable(comm, &op, &counts_chunks[comm.rank()]);
                let plain = reduce_all(comm, &op, &counts_chunks[comm.rank()]);
                (split, plain)
            });
            let expected = gv_core::seq::reduce(&Counts::new(16), &particles);
            for (split, plain) in outcome.results {
                assert_eq!(split, expected, "p={p}");
                assert_eq!(plain, expected, "p={p}");
            }

            let topk_chunks: Vec<Vec<(f64, u64)>> = chunk_ranges(samples.len(), p)
                .map(|r| samples[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                let op = TopBottomK::<f64, u64>::new(10);
                reduce_all_from_iter_splittable(
                    comm,
                    &op,
                    topk_chunks[comm.rank()].iter().copied(),
                )
            });
            let expected = gv_core::seq::reduce(&TopBottomK::<f64, u64>::new(10), &samples);
            for got in outcome.results {
                assert_eq!(got, expected, "topk p={p}");
            }
        }
    }

    #[test]
    fn ireduce_all_matches_blocking_and_overlaps() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 37) % 211 - 100).collect();
        let expected_sum = gv_core::seq::reduce(&sum::<i64>(), &data);
        let expected_max = gv_core::seq::reduce(&max::<i64>(), &data);
        for p in [1usize, 2, 5, 8] {
            let chunks = blocks(&data, p);
            let outcome = Runtime::new(p).run(|comm| {
                // Two reductions in flight at once, completed in reverse
                // issue order.
                let mut rsum = ireduce_all(comm, sum::<i64>(), &chunks[comm.rank()]);
                let mut rmax = ireduce_all(comm, max::<i64>(), &chunks[comm.rank()]);
                let vmax = rmax.wait().unwrap();
                let vsum = rsum.wait().unwrap();
                (vsum, vmax)
            });
            assert_eq!(
                outcome.results,
                vec![(expected_sum, expected_max); p],
                "p={p}"
            );
        }
    }

    #[test]
    fn empty_blocks_are_tolerated() {
        // More ranks than elements: some blocks are empty.
        let data: Vec<i64> = vec![3, 9];
        let chunks = blocks(&data, 5);
        let outcome = Runtime::new(5).run(|comm| {
            reduce_all(comm, &sum::<i64>(), &chunks[comm.rank()])
        });
        assert_eq!(outcome.results, vec![12; 5]);
    }
}
