//! `DistVector` — the *conceptual entire array* of the global-view model.
//!
//! The paper's Chapel call sites operate on whole distributed arrays:
//!
//! ```text
//! minimums = mink(integer, 10) reduce A;
//! var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);
//! ```
//!
//! `DistVector` is the Rust rendering of `A`: a block-distributed vector
//! whose handle lives on every rank of a communicator and whose `reduce`
//! and `scan` methods hide both phases of Figure 1 — the accumulate phase
//! over each rank's block *and* the combine phase across ranks. The
//! `enumerate` adapter is the `[i in 1..n] (A(i), i)` array expression.

use gv_core::op::{ReduceScanOp, ScanKind};
use gv_core::split::SplittableState;
use gv_executor::chunk_ranges;
use gv_msgpass::Comm;

/// One rank's handle to a block-distributed global vector.
///
/// All methods taking `&self` must be called **collectively**: every rank
/// of the communicator calls the same method in the same order (the usual
/// SPMD discipline).
pub struct DistVector<'c, T> {
    comm: &'c Comm,
    local: Vec<T>,
    offset: u64,
    global_len: u64,
}

impl<'c, T> DistVector<'c, T> {
    /// Builds the distributed vector from per-rank local blocks; global
    /// offsets are established with an exclusive scan (one collective).
    pub fn from_local(comm: &'c Comm, local: Vec<T>) -> Self {
        let n = local.len() as u64;
        let offset = comm.scan_exclusive(n, || 0, |_| 8, |a, b| a + b);
        let global_len = comm.allreduce(n, true, |_| 8, |a, b| a + b);
        DistVector {
            comm,
            local,
            offset,
            global_len,
        }
    }

    /// Builds the vector by evaluating `f` at every global index of this
    /// rank's block of a `global_len`-element vector (balanced block
    /// distribution; no communication).
    pub fn generate(comm: &'c Comm, global_len: usize, f: impl Fn(u64) -> T) -> Self {
        let range = chunk_ranges(global_len, comm.size())
            .nth(comm.rank())
            .expect("rank < size");
        let offset = range.start as u64;
        let local: Vec<T> = range.map(|i| f(i as u64)).collect();
        DistVector {
            comm,
            local,
            offset,
            global_len: global_len as u64,
        }
    }

    /// Total (global) element count.
    pub fn global_len(&self) -> u64 {
        self.global_len
    }

    /// This rank's block.
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Global index of `local()[0]`.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The communicator this vector is distributed over.
    pub fn comm(&self) -> &'c Comm {
        self.comm
    }

    /// Global-view reduction of the entire vector; the result appears on
    /// every rank. The paper's `op reduce A`.
    pub fn reduce<Op>(&self, op: &Op) -> Op::Out
    where
        Op: ReduceScanOp<In = T>,
        Op::State: Clone + Send + 'static,
    {
        crate::reduce::reduce_all(self.comm, op, &self.local)
    }

    /// Global-view scan of the entire vector; each rank receives the
    /// outputs for its own block, as a new `DistVector`. The paper's
    /// `op scan A`.
    pub fn scan<Op>(&self, op: &Op, kind: ScanKind) -> DistVector<'c, Op::Out>
    where
        Op: ReduceScanOp<In = T>,
        Op::State: Clone + Send + 'static,
    {
        let out = crate::scan::scan(self.comm, op, &self.local, kind);
        DistVector {
            comm: self.comm,
            local: out,
            offset: self.offset,
            global_len: self.global_len,
        }
    }

    /// [`scan`](Self::scan) for operators with splittable states: the
    /// cross-rank prefix is eligible for the pipelined chain schedule,
    /// which the cost model prefers for large states.
    pub fn scan_splittable<Op>(&self, op: &Op, kind: ScanKind) -> DistVector<'c, Op::Out>
    where
        Op: SplittableState<In = T>,
        Op::State: Clone + Send + 'static,
    {
        let out = crate::scan::scan_splittable(self.comm, op, &self.local, kind);
        DistVector {
            comm: self.comm,
            local: out,
            offset: self.offset,
            global_len: self.global_len,
        }
    }

    /// Element-wise map (no communication).
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> DistVector<'c, U> {
        DistVector {
            comm: self.comm,
            local: self.local.iter().map(f).collect(),
            offset: self.offset,
            global_len: self.global_len,
        }
    }

    /// The paper's `[i in 1..n] (A(i), i)` array expression: pairs each
    /// element with its **1-based** global index (no communication).
    pub fn enumerate(&self) -> DistVector<'c, (T, u64)>
    where
        T: Clone,
    {
        DistVector {
            comm: self.comm,
            local: self
                .local
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), self.offset + i as u64 + 1))
                .collect(),
            offset: self.offset,
            global_len: self.global_len,
        }
    }

    /// Gathers the whole vector onto every rank (testing/debug; O(n)
    /// traffic).
    pub fn gather_to_all(&self) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        let blocks: Vec<Vec<T>> = self.comm.allgather(self.local.clone());
        blocks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gv_core::ops::builtin::sum;
    use gv_core::ops::mink::MinK;
    use gv_core::ops::minloc::mini;
    use gv_core::ops::sorted::Sorted;
    use gv_msgpass::Runtime;

    #[test]
    fn paper_call_site_mink_reduce_a() {
        // `minimums = mink(integer, 10) reduce A;` over A = [0, 3, 6, …].
        let outcome = Runtime::new(4).run(|comm| {
            let a = DistVector::generate(comm, 100, |i| (i as i64 * 3) % 47);
            a.reduce(&MinK::<i64>::new(10))
        });
        let mut oracle: Vec<i64> = (0..100).map(|i| (i * 3) % 47).collect();
        oracle.sort();
        oracle.truncate(10);
        for got in outcome.results {
            assert_eq!(got, oracle);
        }
    }

    #[test]
    fn paper_call_site_mini_over_enumerate() {
        // `var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);`
        let outcome = Runtime::new(3).run(|comm| {
            let a = DistVector::generate(comm, 50, |i| ((i as i64) - 20).abs());
            a.enumerate().reduce(&mini::<i64, u64>())
        });
        // Minimum |i − 20| = 0 at global index 20, i.e. 1-based loc 21.
        assert_eq!(outcome.results, vec![Some((0, 21)); 3]);
    }

    #[test]
    fn scan_returns_a_distributed_result() {
        let outcome = Runtime::new(4).run(|comm| {
            let a = DistVector::generate(comm, 20, |i| i as i64 + 1);
            let prefix = a.scan(&sum::<i64>(), ScanKind::Inclusive);
            assert_eq!(prefix.global_len(), 20);
            assert_eq!(prefix.offset(), a.offset());
            prefix.gather_to_all()
        });
        let expected: Vec<i64> = (1..=20).scan(0, |s, x| {
            *s += x;
            Some(*s)
        })
        .collect();
        for got in outcome.results {
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn splittable_scan_matches_plain_scan_on_dist_vectors() {
        use gv_core::ops::counts::BucketRank;
        let outcome = Runtime::new(4).run(|comm| {
            let a = DistVector::generate(comm, 30, |i| (i as usize * 7) % 8);
            let plain = a.scan(&BucketRank::new(8), ScanKind::Inclusive);
            let split = a.scan_splittable(&BucketRank::new(8), ScanKind::Inclusive);
            assert_eq!(split.offset(), plain.offset());
            (plain.gather_to_all(), split.gather_to_all())
        });
        for (plain, split) in outcome.results {
            assert_eq!(plain, split);
        }
    }

    #[test]
    fn from_local_establishes_offsets() {
        let outcome = Runtime::new(4).run(|comm| {
            // Deliberately unbalanced blocks: rank r holds r + 1 elements.
            let local: Vec<u32> = vec![comm.rank() as u32; comm.rank() + 1];
            let v = DistVector::from_local(comm, local);
            (v.offset(), v.global_len())
        });
        assert_eq!(
            outcome.results,
            vec![(0, 10), (1, 10), (3, 10), (6, 10)]
        );
    }

    #[test]
    fn map_then_reduce() {
        let outcome = Runtime::new(3).run(|comm| {
            let a = DistVector::generate(comm, 10, |i| i as i64);
            a.map(|x| x * x).reduce(&sum::<i64>())
        });
        assert_eq!(outcome.results, vec![285; 3]);
    }

    #[test]
    fn sorted_reads_naturally() {
        let outcome = Runtime::new(4).run(|comm| {
            let a = DistVector::generate(comm, 64, |i| i as i64);
            let b = DistVector::generate(comm, 64, |i| (i as i64 * 7) % 64);
            (a.reduce(&Sorted::new()), b.reduce(&Sorted::new()))
        });
        assert_eq!(outcome.results, vec![(true, false); 4]);
    }
}
