//! # global-view — facade crate
//!
//! Re-exports the whole workspace: the global-view operator abstraction
//! and engines ([`core`]), the execution substrates ([`executor`],
//! [`msgpass`]), the RSMPI layer ([`rsmpi`]) and the NAS kernels
//! ([`nas`]). See the README for a tour and DESIGN.md for the map from
//! the paper's sections to modules.

pub use gv_core as core;
pub use gv_executor as executor;
pub use gv_msgpass as msgpass;
pub use gv_nas as nas;
pub use gv_rsmpi as rsmpi;

pub use gv_core::prelude;
