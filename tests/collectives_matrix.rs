//! Exhaustive small-`p` matrix over the message-passing collectives.
//!
//! Every rank count from 1 through 9 (covering the power-of-two,
//! one-off-a-power, and odd cases every schedule special-cases) ×
//! every collective (rooted reduce at *every* root, allreduce via the
//! cost-driven selector, by reduce+bcast, and by recursive doubling,
//! inclusive / exclusive / linear-chain scans, alltoallv) × a
//! commutative payload (u64 sum) and a non-commutative one (string
//! concatenation, which detects any out-of-rank-order combine) — all
//! checked against a sequential oracle. A second matrix runs the
//! three-way splittable selector over vector payloads, including
//! shorter-than-p vectors that force empty segments.
//!
//! A final test pins down that the virtual-clock cost model and the
//! call/byte statistics are bit-for-bit deterministic across repeated
//! runs of the same workload.

use gv_msgpass::Runtime;

/// Runs one communicator through every reduction/scan-shaped collective
/// and asserts each result against the rank-order sequential oracle.
///
/// `contrib`/`combine`/`ident` are non-capturing closures (fn pointers)
/// so the whole exercise stays `Fn + Sync` for the runtime.
fn exercise_all_collectives<T>(
    p: usize,
    commutative: bool,
    contrib: fn(usize) -> T,
    combine: fn(T, T) -> T,
    ident: fn() -> T,
    wire: fn(&T) -> usize,
) where
    T: Clone + Send + PartialEq + std::fmt::Debug + 'static,
{
    Runtime::new(p).run(|comm| {
        let r = comm.rank();
        let mine = contrib(r);
        // Oracle: fold ranks lo..hi in rank order.
        let fold = |lo: usize, hi: usize| {
            let mut acc = ident();
            for rank in lo..hi {
                acc = combine(acc, contrib(rank));
            }
            acc
        };
        let total = fold(0, p);

        // Rooted reduce, at every possible root.
        for root in 0..p {
            let got = comm.reduce(root, mine.clone(), wire, combine);
            if r == root {
                assert_eq!(
                    got.as_ref(),
                    Some(&total),
                    "reduce(root={root}) at the root, p={p}, rank={r}"
                );
            } else {
                assert!(got.is_none(), "reduce(root={root}) off-root, p={p}, rank={r}");
            }
        }

        // The selector and both named allreduce schedules deliver the
        // total everywhere, for either commutativity declaration.
        assert_eq!(
            comm.allreduce(mine.clone(), commutative, wire, combine),
            total,
            "allreduce (selector), p={p}, rank={r}, commutative={commutative}"
        );
        assert_eq!(
            comm.allreduce_reduce_bcast(mine.clone(), commutative, wire, combine),
            total,
            "allreduce_reduce_bcast, p={p}, rank={r}, commutative={commutative}"
        );
        assert_eq!(
            comm.allreduce_recursive_doubling(mine.clone(), wire, combine),
            total,
            "allreduce_recursive_doubling, p={p}, rank={r}"
        );

        // Scans: rank r's inclusive prefix is ranks 0..=r, exclusive is
        // 0..r (the identity at rank 0), and the O(p) linear chain must
        // agree with the parallel-prefix schedule.
        let inclusive = comm.scan_inclusive(mine.clone(), wire, combine);
        assert_eq!(inclusive, fold(0, r + 1), "scan_inclusive, p={p}, rank={r}");
        let exclusive = comm.scan_exclusive(mine.clone(), ident, wire, combine);
        assert_eq!(exclusive, fold(0, r), "scan_exclusive, p={p}, rank={r}");
        assert_eq!(
            comm.scan_inclusive_linear(mine.clone(), wire, combine),
            inclusive,
            "scan_inclusive_linear, p={p}, rank={r}"
        );
        let (exc2, inc2) = comm.scan_both(mine.clone(), wire, combine);
        assert_eq!(inc2, inclusive, "scan_both inclusive half, p={p}, rank={r}");
        assert_eq!(
            exc2.unwrap_or_else(ident),
            exclusive,
            "scan_both exclusive half, p={p}, rank={r}"
        );
    });
}

#[test]
fn commutative_collectives_match_oracle_for_p_1_through_9() {
    for p in 1..=9 {
        // Distinct per-rank values (squares), so a dropped or duplicated
        // contribution cannot cancel out.
        exercise_all_collectives::<u64>(
            p,
            true,
            |r| (r as u64 + 1) * (r as u64 + 1),
            |a, b| a + b,
            || 0,
            |_| 8,
        );
    }
}

#[test]
fn non_commutative_collectives_match_oracle_for_p_1_through_9() {
    for p in 1..=9 {
        // String concatenation: any combine applied out of rank order
        // produces a visibly different string, so this flushes out
        // schedules that silently assume commutativity.
        exercise_all_collectives::<String>(
            p,
            false,
            |r| format!("[{r}]"),
            |mut a, b| {
                a.push_str(&b);
                a
            },
            String::new,
            |s| s.len(),
        );
    }
}

#[test]
fn splittable_selector_matches_oracle_for_p_1_through_9() {
    // Vector payloads through the three-way selector: length 3 forces
    // empty segments for p > 3; length 64 gives every rank a real chunk.
    for p in 1..=9usize {
        for len in [3usize, 64] {
            for commutative in [true, false] {
                Runtime::new(p).run(move |comm| {
                    let r = comm.rank();
                    let mine: Vec<u64> = (0..len).map(|i| (r * len + i) as u64).collect();
                    let got = comm.allreduce_splittable(
                        mine,
                        commutative,
                        gv_core::split::split_vec_segments,
                        gv_core::split::unsplit_vec_segments,
                        |v: &Vec<u64>| v.len() * 8,
                        |mut a, b| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            a
                        },
                    );
                    let expected: Vec<u64> = (0..len)
                        .map(|i| (0..p).map(|q| (q * len + i) as u64).sum())
                        .collect();
                    assert_eq!(got, expected, "p={p} len={len} commutative={commutative}");
                });
            }
        }
    }
}

#[test]
fn scan_both_counts_one_scan_call_per_rank() {
    // The documented convention: scan_both is one schedule, one call —
    // recorded as a single Scan per rank, never as an extra Exscan.
    for p in 1..=9usize {
        let outcome = Runtime::new(p).run(|comm| {
            comm.scan_both(comm.rank() as u64 + 1, |_| 8, |a, b| a + b);
        });
        use gv_msgpass::CallKind;
        assert_eq!(outcome.stats.calls(CallKind::Scan), p as u64, "p={p}");
        assert_eq!(outcome.stats.calls(CallKind::Exscan), 0, "p={p}");
    }
}

#[test]
fn alltoallv_delivers_every_block_in_order_for_p_1_through_9() {
    for p in 1..=9 {
        Runtime::new(p).run(|comm| {
            let r = comm.rank();
            // Ragged payloads: the block from s to d has (s + 2d) % 4
            // elements, so lengths 0..=3 all occur and differ by pair.
            let payload = |s: usize, d: usize| -> Vec<u64> {
                (0..(s + 2 * d) % 4)
                    .map(|i| (s * 100 + d * 10 + i) as u64)
                    .collect()
            };
            let outgoing: Vec<Vec<u64>> = (0..p).map(|d| payload(r, d)).collect();
            let incoming = comm.alltoallv(outgoing);
            assert_eq!(incoming.len(), p, "alltoallv width, p={p}, rank={r}");
            for (s, block) in incoming.iter().enumerate() {
                assert_eq!(
                    *block,
                    payload(s, r),
                    "alltoallv block from {s}, p={p}, rank={r}"
                );
            }
        });
    }
}

#[test]
fn cost_model_and_stats_are_deterministic_across_runs() {
    for p in [1, 2, 5, 8, 9] {
        let run = || {
            Runtime::new(p).run(|comm| {
                let r = comm.rank() as u64;
                let total = comm.allreduce_recursive_doubling(r + 1, |_| 8, |a, b| a + b);
                let prefix = comm.scan_inclusive(r + 1, |_| 8, |a, b| a + b);
                let outgoing: Vec<Vec<u64>> =
                    (0..comm.size()).map(|d| vec![r; (r as usize + d) % 3]).collect();
                let received: usize = comm.alltoallv(outgoing).iter().map(Vec::len).sum();
                (total, prefix, received)
            })
        };
        let first = run();
        let second = run();
        assert_eq!(first.results, second.results, "results, p={p}");
        // The virtual clock is modeled, not measured: identical
        // workloads must produce bit-identical times and statistics.
        assert_eq!(
            first.modeled_seconds.to_bits(),
            second.modeled_seconds.to_bits(),
            "modeled_seconds, p={p}"
        );
        let clock_bits =
            |o: &gv_msgpass::RunOutcome<(u64, u64, usize)>| -> Vec<u64> {
                o.rank_clocks.iter().map(|c| c.to_bits()).collect()
            };
        assert_eq!(clock_bits(&first), clock_bits(&second), "rank_clocks, p={p}");
        // Schedule-level statistics (calls, messages, bytes) are modeled
        // and must be bit-identical. The transport-path counters are
        // *observed* (ring vs stash hits, parks depend on thread timing),
        // so they are masked out of the comparison.
        let schedule_stats = |o: &gv_msgpass::RunOutcome<(u64, u64, usize)>| {
            let mut stats = o.stats;
            stats.transport = Default::default();
            stats
        };
        assert_eq!(
            schedule_stats(&first),
            schedule_stats(&second),
            "stats snapshot, p={p}"
        );
        if p > 1 {
            assert!(
                first.modeled_seconds > 0.0,
                "communication must cost virtual time, p={p}"
            );
        }
    }
}
