//! Sub-communicator scenarios: global-view reductions over `split`
//! groups, concurrent traffic on duplicated communicators, and a stress
//! test of interleaved collectives.

use gv_core::op::ScanKind;
use gv_core::ops::builtin::sum;
use gv_core::ops::mink::MinK;
use gv_msgpass::Runtime;

#[test]
fn rsmpi_reduction_inside_split_groups() {
    // 8 ranks split into two groups of 4; each group reduces its own
    // conceptual array with a user-defined operator.
    let outcome = Runtime::new(8).run(|comm| {
        let color = (comm.rank() / 4) as i64;
        let sub = comm.split(color, comm.rank() as i64);
        // Group g's conceptual array: [100g, 100g+1, …, 100g+19], 5 per
        // rank.
        let local: Vec<i64> = (0..5)
            .map(|i| color * 100 + sub.rank() as i64 * 5 + i)
            .collect();
        gv_rsmpi::reduce_all(&sub, &MinK::<i64>::new(3), &local)
    });
    for (rank, got) in outcome.results.into_iter().enumerate() {
        let g = (rank / 4) as i64;
        assert_eq!(got, vec![100 * g, 100 * g + 1, 100 * g + 2], "rank {rank}");
    }
}

#[test]
fn scans_on_split_groups_are_independent() {
    let outcome = Runtime::new(6).run(|comm| {
        let color = (comm.rank() % 2) as i64;
        let sub = comm.split(color, comm.rank() as i64);
        let local = vec![1i64; 2];
        gv_rsmpi::scan(&sub, &sum::<i64>(), &local, ScanKind::Inclusive)
    });
    // Each 3-rank group scans [1; 6]: rank-in-group r gets [2r+1, 2r+2].
    for (rank, got) in outcome.results.into_iter().enumerate() {
        let r = (rank / 2) as i64;
        assert_eq!(got, vec![2 * r + 1, 2 * r + 2], "rank {rank}");
    }
}

#[test]
fn world_and_subgroup_collectives_interleave_safely() {
    let outcome = Runtime::new(4).run(|comm| {
        let sub = comm.split((comm.rank() % 2) as i64, 0);
        // Interleave world and subgroup collectives; communicator ids keep
        // the traffic apart.
        let world_total = comm.allreduce(1u64, true, |_| 8, |a, b| a + b);
        let group_total = sub.allreduce(10u64, true, |_| 8, |a, b| a + b);
        comm.barrier();
        let world_scan = comm.scan_inclusive(1u64, |_| 8, |a, b| a + b);
        (world_total, group_total, world_scan)
    });
    for (rank, (wt, gt, ws)) in outcome.results.into_iter().enumerate() {
        assert_eq!(wt, 4);
        assert_eq!(gt, 20);
        assert_eq!(ws, rank as u64 + 1);
    }
}

#[test]
fn nested_splits() {
    // Split twice: quadrants of an 8-rank world.
    let outcome = Runtime::new(8).run(|comm| {
        let half = comm.split((comm.rank() / 4) as i64, comm.rank() as i64);
        let quad = half.split((half.rank() / 2) as i64, half.rank() as i64);
        let total = quad.allreduce(comm.rank() as u64, true, |_| 8, |a, b| a + b);
        (quad.size(), total)
    });
    for (rank, (size, total)) in outcome.results.into_iter().enumerate() {
        assert_eq!(size, 2);
        let base = (rank / 2 * 2) as u64;
        assert_eq!(total, base + base + 1, "rank {rank}");
    }
}

#[test]
fn interleaved_collective_stress() {
    // Many rounds mixing every collective kind on the same communicator;
    // tag/round discipline must keep them all straight.
    let outcome = Runtime::new(6).run(|comm| {
        let mut checksum = 0u64;
        for round in 0..25u64 {
            let s = comm.allreduce(round + comm.rank() as u64, true, |_| 8, |a, b| a + b);
            let g = comm.allgather(round * 10 + comm.rank() as u64);
            let x = comm.scan_exclusive(1u64, || 0, |_| 8, |a, b| a + b);
            let b = comm.bcast(
                (round % comm.size() as u64) as usize,
                (comm.rank() as u64 == round % comm.size() as u64).then_some(round),
            );
            comm.barrier();
            checksum = checksum
                .wrapping_add(s)
                .wrapping_add(g.iter().sum::<u64>())
                .wrapping_add(x)
                .wrapping_add(b);
        }
        checksum
    });
    // All ranks agree on the collective parts; the exscan part differs by
    // rank. Recompute the expectation directly.
    let p = 6u64;
    for (rank, got) in outcome.results.into_iter().enumerate() {
        let mut expect = 0u64;
        for round in 0..25u64 {
            let s = round * p + (0..p).sum::<u64>();
            let g = round * 10 * p + (0..p).sum::<u64>();
            let x = rank as u64;
            let b = round;
            expect = expect
                .wrapping_add(s)
                .wrapping_add(g)
                .wrapping_add(x)
                .wrapping_add(b);
        }
        assert_eq!(got, expect, "rank {rank}");
    }
}
