//! Integration tests of the NAS kernels end-to-end across the full stack
//! (operators → RSMPI → collectives → runtime).

use gv_msgpass::{CallKind, Runtime};
use gv_nas::is::{run_is, VerifyVariant};
use gv_nas::mg::vcycle::{norm2u3, v_cycle};
use gv_nas::mg::zran3::{zran3, Zran3Variant};
use gv_nas::mg::Slab;
use gv_nas::{IsClass, MgClass};

#[test]
fn is_pipeline_verifies_across_rank_counts_and_variants() {
    for p in [1usize, 2, 4, 8] {
        for (variant, name) in VerifyVariant::ALL {
            let outcome = Runtime::new(p).run(move |comm| {
                run_is(comm, IsClass::S, variant)
            });
            let total: usize = outcome.results.iter().map(|(_, n)| n).sum();
            assert_eq!(total, IsClass::S.total_keys(), "{name} p={p}");
            assert!(outcome.results.iter().all(|(ok, _)| *ok), "{name} p={p}");
        }
    }
}

#[test]
fn is_detects_an_injected_violation() {
    // Corrupt one key after sorting; every variant must notice.
    for (variant, name) in VerifyVariant::ALL {
        let outcome = Runtime::new(4).run(move |comm| {
            let keys = gv_nas::is::generate_keys(IsClass::S, comm.rank(), comm.size());
            let mut block = gv_nas::is::distributed_sort(comm, &keys, IsClass::S.max_key());
            if comm.rank() == 2 && block.keys.len() > 10 {
                let mid = block.keys.len() / 2;
                block.keys[mid] = block.keys[mid].wrapping_add(1 << 10);
            }
            variant.verify(comm, &block.keys)
        });
        assert_eq!(outcome.results, vec![false; 4], "{name}");
    }
}

#[test]
fn zran3_results_are_rank_count_invariant() {
    let reference = Runtime::new(1).run(|comm| {
        let mut slab = Slab::for_rank(16, 0, 1);
        zran3(comm, &mut slab, 10, Zran3Variant::Rsmpi)
    });
    let expected = &reference.results[0];
    for p in [2usize, 3, 8] {
        for (variant, name) in Zran3Variant::ALL {
            let outcome = Runtime::new(p).run(move |comm| {
                let mut slab = Slab::for_rank(16, comm.rank(), comm.size());
                zran3(comm, &mut slab, 10, variant)
            });
            for got in &outcome.results {
                assert_eq!(got, expected, "{name} p={p}");
            }
        }
    }
}

#[test]
fn zran3_reduction_counts_match_the_paper() {
    // §4.2: "implemented with forty reductions" vs "a single user-defined
    // reduction".
    let p = 4;
    let count_allreduces = |variant| {
        let outcome = Runtime::new(p).run(move |comm| {
            let mut slab = Slab::for_rank(16, comm.rank(), comm.size());
            zran3(comm, &mut slab, 10, variant);
        });
        outcome.stats.calls(CallKind::Allreduce) / p as u64
    };
    assert_eq!(count_allreduces(Zran3Variant::Mpi), 40);
    assert_eq!(count_allreduces(Zran3Variant::Rsmpi), 1);
}

#[test]
fn mg_benchmark_runs_zran3_then_converges() {
    // The class-S shape: zran3 initializes the charge field, V-cycles
    // drive the residual down — ZRAN3 runs inside a working benchmark.
    let class = MgClass::S;
    let outcome = Runtime::new(2).run(move |comm| {
        let mut v = Slab::for_rank(class.n, comm.rank(), comm.size());
        zran3(comm, &mut v, 10, Zran3Variant::Rsmpi);
        let (initial_l2, initial_max) = norm2u3(comm, &v);
        let mut u = Slab::for_rank(class.n, comm.rank(), comm.size());
        let mut r = v.clone();
        let mut l2 = f64::INFINITY;
        for _ in 0..class.iterations {
            l2 = v_cycle(comm, &mut u, &v, &mut r).0;
        }
        (initial_l2, initial_max, l2)
    });
    for (initial_l2, initial_max, final_l2) in outcome.results {
        // The charge field is ±1 spikes: max-norm exactly 1, L2 tiny.
        assert_eq!(initial_max, 1.0);
        assert!(initial_l2 > 0.0 && initial_l2 < 1.0);
        assert!(final_l2 < initial_l2, "V-cycles must reduce the residual");
    }
}

#[test]
fn modeled_speedup_shape_matches_figure_3() {
    // The headline qualitative claim, as an assertion: at a fixed small
    // grid, the RSMPI/MPI gap *grows* with rank count, and RSMPI stays
    // faster.
    let time = |p: usize, variant| {
        Runtime::new(p)
            .run(move |comm| {
                let mut slab = Slab::for_rank(32, comm.rank(), comm.size());
                zran3(comm, &mut slab, 10, variant);
            })
            .modeled_seconds
    };
    let mut previous_ratio = 0.0;
    for p in [2usize, 8, 32] {
        let ratio = time(p, Zran3Variant::Mpi) / time(p, Zran3Variant::Rsmpi);
        assert!(ratio > 1.0, "RSMPI must win at p={p} (ratio {ratio})");
        assert!(
            ratio > previous_ratio,
            "the gap must widen with p (p={p}: {ratio} vs {previous_ratio})"
        );
        previous_ratio = ratio;
    }
}
