//! Property-based tests of the core invariants, with proptest.
//!
//! The two laws the operator contract demands (see `gv_core::op`):
//! decomposition invariance (any chunking of the accumulate phase yields
//! the sequential result) and the scan identities (exclusive ⊕ element =
//! inclusive; last inclusive = reduction).

use proptest::prelude::*;

use gv_core::op::ScanKind;
use gv_core::ops::builtin::{max, min, sum};
use gv_core::ops::counts::Counts;
use gv_core::ops::mink::MinK;
use gv_core::ops::sorted::Sorted;
use gv_core::ops::stats::MeanVar;
use gv_core::ops::translate::Translated;
use gv_core::{par, seq};
use gv_executor::{chunk_ranges, Pool};
use gv_msgpass::Runtime;

fn pool() -> Pool {
    Pool::new(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_sum_matches_seq_for_any_chunking(
        data in proptest::collection::vec(-1000i64..1000, 0..300),
        parts in 1usize..40,
    ) {
        let expected = seq::reduce(&sum::<i64>(), &data);
        prop_assert_eq!(par::reduce(&pool(), parts, &sum::<i64>(), &data), expected);
    }

    #[test]
    fn par_minmax_matches_seq(
        data in proptest::collection::vec(i64::MIN..i64::MAX, 0..200),
        parts in 1usize..20,
    ) {
        prop_assert_eq!(
            par::reduce(&pool(), parts, &min::<i64>(), &data),
            seq::reduce(&min::<i64>(), &data)
        );
        prop_assert_eq!(
            par::reduce(&pool(), parts, &max::<i64>(), &data),
            seq::reduce(&max::<i64>(), &data)
        );
    }

    #[test]
    fn mink_equals_sort_prefix(
        data in proptest::collection::vec(-500i32..500, 1..200),
        k in 1usize..20,
    ) {
        let got = seq::reduce(&MinK::<i32>::new(k), &data);
        let mut oracle = data.clone();
        oracle.sort();
        oracle.truncate(k);
        while oracle.len() < k {
            oracle.push(i32::MAX); // identity padding
        }
        prop_assert_eq!(got, oracle);
    }

    #[test]
    fn mink_is_chunking_invariant(
        data in proptest::collection::vec(-500i32..500, 0..200),
        k in 1usize..12,
        parts in 1usize..16,
    ) {
        let op = MinK::<i32>::new(k);
        prop_assert_eq!(
            par::reduce(&pool(), parts, &op, &data),
            seq::reduce(&op, &data)
        );
    }

    #[test]
    fn sorted_agrees_with_is_sorted(
        data in proptest::collection::vec(-100i64..100, 0..150),
        parts in 1usize..12,
    ) {
        let expected = data.windows(2).all(|w| w[0] <= w[1]);
        prop_assert_eq!(seq::reduce(&Sorted::<i64>::new(), &data), expected);
        prop_assert_eq!(par::reduce(&pool(), parts, &Sorted::<i64>::new(), &data), expected);
    }

    #[test]
    fn scan_identities_hold(
        data in proptest::collection::vec(-1000i64..1000, 0..200),
    ) {
        let inclusive = seq::scan(&sum::<i64>(), &data, ScanKind::Inclusive);
        let exclusive = seq::scan(&sum::<i64>(), &data, ScanKind::Exclusive);
        // inclusive[i] = exclusive[i] + data[i]  (paper §1)
        for i in 0..data.len() {
            prop_assert_eq!(inclusive[i], exclusive[i] + data[i]);
        }
        // last inclusive element equals the reduction
        if let Some(last) = inclusive.last() {
            prop_assert_eq!(*last, seq::reduce(&sum::<i64>(), &data));
        }
        // exclusive starts at the identity
        if let Some(first) = exclusive.first() {
            prop_assert_eq!(*first, 0);
        }
    }

    #[test]
    fn par_scan_matches_seq_scan(
        data in proptest::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..16,
    ) {
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            prop_assert_eq!(
                par::scan(&pool(), parts, &sum::<i64>(), &data, kind),
                seq::scan(&sum::<i64>(), &data, kind)
            );
        }
    }

    #[test]
    fn counts_total_is_input_length(
        data in proptest::collection::vec(0usize..16, 0..200),
        parts in 1usize..10,
    ) {
        let op = Counts::new(16);
        let counts = par::reduce(&pool(), parts, &op, &data);
        prop_assert_eq!(counts.iter().sum::<u64>(), data.len() as u64);
        prop_assert_eq!(counts, seq::reduce(&op, &data));
    }

    #[test]
    fn translate_form_is_semantically_identical(
        data in proptest::collection::vec(-500i64..500, 0..150),
    ) {
        prop_assert_eq!(
            seq::reduce(&Translated(sum::<i64>()), &data),
            seq::reduce(&sum::<i64>(), &data)
        );
        let k = 5;
        prop_assert_eq!(
            seq::reduce(&Translated(MinK::<i64>::new(k)), &data),
            seq::reduce(&MinK::<i64>::new(k), &data)
        );
    }

    #[test]
    fn meanvar_merge_is_chunking_invariant(
        data in proptest::collection::vec(-1e6f64..1e6, 0..200),
        parts in 1usize..12,
    ) {
        let a = seq::reduce(&MeanVar, &data);
        let b = par::reduce(&pool(), parts, &MeanVar, &data);
        prop_assert_eq!(a.count, b.count);
        prop_assert!((a.mean - b.mean).abs() <= 1e-6 * (1.0 + a.mean.abs()));
        prop_assert!((a.variance - b.variance).abs() <= 1e-4 * (1.0 + a.variance.abs()));
    }
}

proptest! {
    // Message-passing runs spawn threads; keep the case count lower.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rsmpi_reduce_matches_seq_for_any_rank_count(
        data in proptest::collection::vec(-1000i64..1000, 0..120),
        p in 1usize..9,
    ) {
        let expected = seq::reduce(&sum::<i64>(), &data);
        let chunks: Vec<Vec<i64>> = chunk_ranges(data.len(), p)
            .map(|r| data[r].to_vec())
            .collect();
        let outcome = Runtime::new(p).run(|comm| {
            gv_rsmpi::reduce_all(comm, &sum::<i64>(), &chunks[comm.rank()])
        });
        prop_assert_eq!(outcome.results, vec![expected; p]);
    }

    #[test]
    fn rsmpi_scan_matches_seq_for_any_rank_count(
        data in proptest::collection::vec(-1000i64..1000, 0..120),
        p in 1usize..9,
    ) {
        let expected = seq::scan(&sum::<i64>(), &data, ScanKind::Exclusive);
        let chunks: Vec<Vec<i64>> = chunk_ranges(data.len(), p)
            .map(|r| data[r].to_vec())
            .collect();
        let outcome = Runtime::new(p).run(|comm| {
            gv_rsmpi::scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Exclusive)
        });
        let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn rsmpi_sorted_matches_oracle(
        data in proptest::collection::vec(0u32..50, 0..100),
        p in 1usize..7,
    ) {
        let expected = data.windows(2).all(|w| w[0] <= w[1]);
        let chunks: Vec<Vec<u32>> = chunk_ranges(data.len(), p)
            .map(|r| data[r].to_vec())
            .collect();
        let outcome = Runtime::new(p).run(|comm| {
            gv_nas::is::verify_rsmpi(comm, &chunks[comm.rank()])
        });
        prop_assert_eq!(outcome.results, vec![expected; p]);
    }

    #[test]
    fn all_is_verifiers_agree_with_oracle(
        data in proptest::collection::vec(0u32..1000, 0..100),
        p in 1usize..7,
    ) {
        let expected = data.windows(2).all(|w| w[0] <= w[1]);
        let chunks: Vec<Vec<u32>> = chunk_ranges(data.len(), p)
            .map(|r| data[r].to_vec())
            .collect();
        for (variant, name) in gv_nas::is::VerifyVariant::ALL {
            let outcome = Runtime::new(p).run(|comm| {
                variant.verify(comm, &chunks[comm.rank()])
            });
            prop_assert_eq!(outcome.results, vec![expected; p], "{}", name);
        }
    }
}
