//! Property-based tests of the core invariants, on the in-tree
//! `gv-testkit` runner (no external proptest dependency).
//!
//! The two laws the operator contract demands (see `gv_core::op`):
//! decomposition invariance (any chunking of the accumulate phase yields
//! the sequential result) and the scan identities (exclusive ⊕ element =
//! inclusive; last inclusive = reduction).
//!
//! Every failure message prints a case seed; rerun just that input with
//! `GV_TESTKIT_SEED=<seed> cargo test <test name>`.

use gv_testkit::prop::{check, f64s, i32s, i64s, usizes, vec_of, Config};
use gv_testkit::{prop_assert, prop_assert_eq};

use gv_core::op::ScanKind;
use gv_core::ops::builtin::{max, min, sum};
use gv_core::ops::counts::Counts;
use gv_core::ops::mink::MinK;
use gv_core::ops::sorted::Sorted;
use gv_core::ops::stats::MeanVar;
use gv_core::ops::translate::Translated;
use gv_core::{par, seq};
use gv_executor::{chunk_ranges, Pool};
use gv_msgpass::Runtime;

fn pool() -> Pool {
    Pool::new(2)
}

fn cfg() -> Config {
    Config::new(256)
}

#[test]
fn par_sum_matches_seq_for_any_chunking() {
    check(
        "par_sum_matches_seq_for_any_chunking",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 0..300), usizes(1..40)),
        |(data, parts)| {
            let expected = seq::reduce(&sum::<i64>(), data);
            prop_assert_eq!(par::reduce(&pool(), *parts, &sum::<i64>(), data), expected);
            Ok(())
        },
    );
}

#[test]
fn par_minmax_matches_seq() {
    check(
        "par_minmax_matches_seq",
        &cfg(),
        &(vec_of(i64s(i64::MIN..i64::MAX), 0..200), usizes(1..20)),
        |(data, parts)| {
            prop_assert_eq!(
                par::reduce(&pool(), *parts, &min::<i64>(), data),
                seq::reduce(&min::<i64>(), data)
            );
            prop_assert_eq!(
                par::reduce(&pool(), *parts, &max::<i64>(), data),
                seq::reduce(&max::<i64>(), data)
            );
            Ok(())
        },
    );
}

#[test]
fn mink_equals_sort_prefix() {
    check(
        "mink_equals_sort_prefix",
        &cfg(),
        &(vec_of(i32s(-500..500), 1..200), usizes(1..20)),
        |(data, k)| {
            let got = seq::reduce(&MinK::<i32>::new(*k), data);
            let mut oracle = data.clone();
            oracle.sort();
            oracle.truncate(*k);
            while oracle.len() < *k {
                oracle.push(i32::MAX); // identity padding
            }
            prop_assert_eq!(got, oracle);
            Ok(())
        },
    );
}

#[test]
fn mink_is_chunking_invariant() {
    check(
        "mink_is_chunking_invariant",
        &cfg(),
        &(vec_of(i32s(-500..500), 0..200), usizes(1..12), usizes(1..16)),
        |(data, k, parts)| {
            let op = MinK::<i32>::new(*k);
            prop_assert_eq!(
                par::reduce(&pool(), *parts, &op, data),
                seq::reduce(&op, data)
            );
            Ok(())
        },
    );
}

#[test]
fn sorted_agrees_with_is_sorted() {
    check(
        "sorted_agrees_with_is_sorted",
        &cfg(),
        &(vec_of(i64s(-100..100), 0..150), usizes(1..12)),
        |(data, parts)| {
            let expected = data.windows(2).all(|w| w[0] <= w[1]);
            prop_assert_eq!(seq::reduce(&Sorted::<i64>::new(), data), expected);
            prop_assert_eq!(
                par::reduce(&pool(), *parts, &Sorted::<i64>::new(), data),
                expected
            );
            Ok(())
        },
    );
}

#[test]
fn scan_identities_hold() {
    check(
        "scan_identities_hold",
        &cfg(),
        &vec_of(i64s(-1000..1000), 0..200),
        |data| {
            let inclusive = seq::scan(&sum::<i64>(), data, ScanKind::Inclusive);
            let exclusive = seq::scan(&sum::<i64>(), data, ScanKind::Exclusive);
            // inclusive[i] = exclusive[i] + data[i]  (paper §1)
            for i in 0..data.len() {
                prop_assert_eq!(inclusive[i], exclusive[i] + data[i]);
            }
            // last inclusive element equals the reduction
            if let Some(last) = inclusive.last() {
                prop_assert_eq!(*last, seq::reduce(&sum::<i64>(), data));
            }
            // exclusive starts at the identity
            if let Some(first) = exclusive.first() {
                prop_assert_eq!(*first, 0);
            }
            Ok(())
        },
    );
}

#[test]
fn par_scan_matches_seq_scan() {
    check(
        "par_scan_matches_seq_scan",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 0..200), usizes(1..16)),
        |(data, parts)| {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                prop_assert_eq!(
                    par::scan(&pool(), *parts, &sum::<i64>(), data, kind),
                    seq::scan(&sum::<i64>(), data, kind)
                );
            }
            Ok(())
        },
    );
}

#[test]
fn counts_total_is_input_length() {
    check(
        "counts_total_is_input_length",
        &cfg(),
        &(vec_of(usizes(0..16), 0..200), usizes(1..10)),
        |(data, parts)| {
            let op = Counts::new(16);
            let counts = par::reduce(&pool(), *parts, &op, data);
            prop_assert_eq!(counts.iter().sum::<u64>(), data.len() as u64);
            prop_assert_eq!(counts, seq::reduce(&op, data));
            Ok(())
        },
    );
}

#[test]
fn translate_form_is_semantically_identical() {
    check(
        "translate_form_is_semantically_identical",
        &cfg(),
        &vec_of(i64s(-500..500), 0..150),
        |data| {
            prop_assert_eq!(
                seq::reduce(&Translated(sum::<i64>()), data),
                seq::reduce(&sum::<i64>(), data)
            );
            let k = 5;
            prop_assert_eq!(
                seq::reduce(&Translated(MinK::<i64>::new(k)), data),
                seq::reduce(&MinK::<i64>::new(k), data)
            );
            Ok(())
        },
    );
}

#[test]
fn meanvar_merge_is_chunking_invariant() {
    check(
        "meanvar_merge_is_chunking_invariant",
        &cfg(),
        &(vec_of(f64s(-1e6..1e6), 0..200), usizes(1..12)),
        |(data, parts)| {
            let a = seq::reduce(&MeanVar, data);
            let b = par::reduce(&pool(), *parts, &MeanVar, data);
            prop_assert_eq!(a.count, b.count);
            prop_assert!((a.mean - b.mean).abs() <= 1e-6 * (1.0 + a.mean.abs()));
            prop_assert!((a.variance - b.variance).abs() <= 1e-4 * (1.0 + a.variance.abs()));
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Message-passing laws: every rank count from 1 to 8.
// ---------------------------------------------------------------------

#[test]
fn rsmpi_reduce_matches_seq_for_any_rank_count() {
    check(
        "rsmpi_reduce_matches_seq_for_any_rank_count",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 0..120), usizes(1..9)),
        |(data, p)| {
            let p = *p;
            let expected = seq::reduce(&sum::<i64>(), data);
            let chunks: Vec<Vec<i64>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                gv_rsmpi::reduce_all(comm, &sum::<i64>(), &chunks[comm.rank()])
            });
            prop_assert_eq!(outcome.results, vec![expected; p]);
            Ok(())
        },
    );
}

#[test]
fn rsmpi_scan_matches_seq_for_any_rank_count() {
    check(
        "rsmpi_scan_matches_seq_for_any_rank_count",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 0..120), usizes(1..9)),
        |(data, p)| {
            let p = *p;
            let expected = seq::scan(&sum::<i64>(), data, ScanKind::Exclusive);
            let chunks: Vec<Vec<i64>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                gv_rsmpi::scan(comm, &sum::<i64>(), &chunks[comm.rank()], ScanKind::Exclusive)
            });
            let flat: Vec<i64> = outcome.results.into_iter().flatten().collect();
            prop_assert_eq!(flat, expected);
            Ok(())
        },
    );
}

#[test]
fn rsmpi_sorted_matches_oracle() {
    check(
        "rsmpi_sorted_matches_oracle",
        &cfg(),
        &(vec_of(i64s(0..50), 0..100), usizes(1..7)),
        |(data, p)| {
            let p = *p;
            let data: Vec<u32> = data.iter().map(|&x| x as u32).collect();
            let expected = data.windows(2).all(|w| w[0] <= w[1]);
            let chunks: Vec<Vec<u32>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            let outcome =
                Runtime::new(p).run(|comm| gv_nas::is::verify_rsmpi(comm, &chunks[comm.rank()]));
            prop_assert_eq!(outcome.results, vec![expected; p]);
            Ok(())
        },
    );
}

#[test]
fn all_is_verifiers_agree_with_oracle() {
    check(
        "all_is_verifiers_agree_with_oracle",
        &cfg(),
        &(vec_of(i64s(0..1000), 0..100), usizes(1..7)),
        |(data, p)| {
            let p = *p;
            let data: Vec<u32> = data.iter().map(|&x| x as u32).collect();
            let expected = data.windows(2).all(|w| w[0] <= w[1]);
            let chunks: Vec<Vec<u32>> = chunk_ranges(data.len(), p)
                .map(|r| data[r].to_vec())
                .collect();
            for (variant, name) in gv_nas::is::VerifyVariant::ALL {
                let outcome =
                    Runtime::new(p).run(|comm| variant.verify(comm, &chunks[comm.rank()]));
                prop_assert_eq!(outcome.results, vec![expected; p], "{}", name);
            }
            Ok(())
        },
    );
}
