//! Property tests for the extension operators and the distributed-vector
//! API, plus failure-injection checks of the runtime's error paths.
//! Runs on the in-tree `gv-testkit` runner; failing cases print a
//! `GV_TESTKIT_SEED` replay line.

use gv_testkit::prop::{bools, check, f64s, i64s, usizes, vec_of, Config};
use gv_testkit::prop_assert_eq;

use gv_core::iter::{reduce_iter, scan_iter};
use gv_core::op::ScanKind;
use gv_core::ops::builtin::{sum, Sum};
use gv_core::ops::histogram::Histogram;
use gv_core::ops::minmax::minmax;
use gv_core::ops::segmented::Segmented;
use gv_core::{par, seq};
use gv_executor::Pool;
use gv_msgpass::Runtime;
use gv_rsmpi::DistVector;

fn cfg() -> Config {
    Config::new(256)
}

#[test]
fn minmax_matches_iterator_extremes() {
    check(
        "minmax_matches_iterator_extremes",
        &cfg(),
        &(vec_of(f64s(-1e9..1e9), 0..200), usizes(1..12)),
        |(data, parts)| {
            let expected = if data.is_empty() {
                None
            } else {
                let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some((lo, hi))
            };
            prop_assert_eq!(seq::reduce(&minmax(), data), expected);
            let pool = Pool::new(2);
            prop_assert_eq!(par::reduce(&pool, *parts, &minmax(), data), expected);
            Ok(())
        },
    );
}

#[test]
fn segmented_scan_equals_per_segment_scans() {
    check(
        "segmented_scan_equals_per_segment_scans",
        &cfg(),
        // Segment-start flags; position 0 forced true below.
        &(vec_of(i64s(-100..100), 1..150), vec_of(bools(), 1..150)),
        |(values, flags)| {
            let n = values.len().min(flags.len());
            let input: Vec<(i64, bool)> = (0..n)
                .map(|i| (values[i], i == 0 || flags[i]))
                .collect();
            let got = seq::scan(&Segmented(Sum::<i64>::default()), &input, ScanKind::Inclusive);
            // Oracle: restart a running sum at every flag.
            let mut oracle = Vec::with_capacity(n);
            let mut acc = 0i64;
            for &(v, starts) in &input {
                acc = if starts { v } else { acc + v };
                oracle.push(acc);
            }
            prop_assert_eq!(got, oracle);
            Ok(())
        },
    );
}

#[test]
fn segmented_scan_is_chunking_invariant() {
    check(
        "segmented_scan_is_chunking_invariant",
        &cfg(),
        &(vec_of(i64s(-100..100), 0..150), usizes(1..10), usizes(1..9)),
        |(values, parts, stride)| {
            let input: Vec<(i64, bool)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i % stride == 0))
                .collect();
            let op = Segmented(Sum::<i64>::default());
            let expected = seq::scan(&op, &input, ScanKind::Inclusive);
            let pool = Pool::new(2);
            prop_assert_eq!(
                par::scan(&pool, *parts, &op, &input, ScanKind::Inclusive),
                expected
            );
            Ok(())
        },
    );
}

#[test]
fn histogram_bins_partition_the_input() {
    check(
        "histogram_bins_partition_the_input",
        &cfg(),
        &(vec_of(f64s(-50.0..150.0), 0..200), usizes(1..12)),
        |(data, bins)| {
            let h = Histogram::uniform(0.0, 100.0, *bins);
            let counts = seq::reduce(&h, data);
            prop_assert_eq!(counts.total(), data.len() as u64);
            prop_assert_eq!(counts.bins.len(), bins + 2);
            let under = data.iter().filter(|&&x| x < 0.0).count() as u64;
            let over = data.iter().filter(|&&x| x >= 100.0).count() as u64;
            prop_assert_eq!(counts.bins[0], under);
            prop_assert_eq!(*counts.bins.last().unwrap(), over);
            Ok(())
        },
    );
}

#[test]
fn iter_engine_matches_slice_engine() {
    check(
        "iter_engine_matches_slice_engine",
        &cfg(),
        &vec_of(i64s(-1000..1000), 0..150),
        |data| {
            prop_assert_eq!(
                reduce_iter(&sum::<i64>(), data.iter().copied()),
                seq::reduce(&sum::<i64>(), data)
            );
            let streamed: Vec<i64> =
                scan_iter(&sum::<i64>(), data.iter().copied(), ScanKind::Exclusive).collect();
            prop_assert_eq!(streamed, seq::scan(&sum::<i64>(), data, ScanKind::Exclusive));
            Ok(())
        },
    );
}

#[test]
fn dist_vector_reduce_and_scan_match_oracle() {
    check(
        "dist_vector_reduce_and_scan_match_oracle",
        &cfg(),
        &(usizes(0..120), usizes(1..7), usizes(0..1000)),
        |&(global_len, p, seed)| {
            let seed = seed as u64;
            let oracle: Vec<i64> = (0..global_len as u64)
                .map(|i| ((i.wrapping_mul(seed + 7)) % 201) as i64 - 100)
                .collect();
            let expected_sum = seq::reduce(&sum::<i64>(), &oracle);
            let expected_scan = seq::scan(&sum::<i64>(), &oracle, ScanKind::Inclusive);
            let outcome = Runtime::new(p).run(move |comm| {
                let a = DistVector::generate(comm, global_len, |i| {
                    ((i.wrapping_mul(seed + 7)) % 201) as i64 - 100
                });
                let total = a.reduce(&sum::<i64>());
                let prefix = a.scan(&sum::<i64>(), ScanKind::Inclusive).gather_to_all();
                (total, prefix)
            });
            for (total, prefix) in outcome.results {
                prop_assert_eq!(total, expected_sum);
                prop_assert_eq!(&prefix, &expected_scan);
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Failure injection: the error paths users actually hit.
// ---------------------------------------------------------------------

#[test]
fn operator_panic_inside_distributed_reduce_unwinds_cleanly() {
    struct Bomb;
    impl gv_core::op::ReduceScanOp for Bomb {
        type In = i64;
        type State = i64;
        type Out = i64;
        fn ident(&self) -> i64 {
            0
        }
        fn accum(&self, s: &mut i64, x: &i64) {
            if *x == 13 {
                panic!("unlucky accumulate");
            }
            *s += *x;
        }
        fn combine(&self, a: &mut i64, b: i64) {
            *a += b;
        }
        fn red_gen(&self, s: i64) -> i64 {
            s
        }
        fn scan_gen(&self, s: &i64, _x: &i64) -> i64 {
            *s
        }
    }
    let result = std::panic::catch_unwind(|| {
        Runtime::new(4).run(|comm| {
            let local: Vec<i64> = vec![comm.rank() as i64 * 13]; // rank 1 holds 13
            gv_rsmpi::reduce_all(comm, &Bomb, &local)
        })
    });
    assert!(result.is_err(), "the panic must propagate, not deadlock");
}

#[test]
fn type_mismatch_on_receive_is_a_clear_panic() {
    let result = std::panic::catch_unwind(|| {
        Runtime::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 42u32);
            } else {
                let _: String = comm.recv(0, 3); // wrong type
            }
        })
    });
    let err = result.expect_err("must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("type mismatch"), "got: {msg}");
}

#[test]
fn blocked_peers_of_a_panicking_rank_see_a_typed_shutdown() {
    // When one rank panics, the others' blocked receives unwind with a
    // `ShutdownError` payload (not a deadlock, not an opaque string).
    let result = std::panic::catch_unwind(|| {
        Runtime::new(3).run(|comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded");
            }
            // Other ranks block on a message that will never come.
            let _: u8 = comm.recv(1, 5);
        })
    });
    let err = result.expect_err("must panic");
    // The *first* panic wins; depending on scheduling that is rank 1's
    // String or a peer's ShutdownError — both must be well-formed.
    if let Some(shutdown) = err.downcast_ref::<gv_msgpass::ShutdownError>() {
        assert_eq!(shutdown.kind, gv_msgpass::ShutdownKind::Aborted);
        assert_eq!(shutdown.tag, 5);
    } else {
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("rank 1 exploded"), "unexpected payload: {msg}");
    }
}

#[test]
fn pool_survives_repeated_job_panics() {
    let pool = Pool::new(2);
    for _ in 0..5 {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|| panic!("job panic")));
        }));
        assert!(r.is_err());
    }
    // Still fully functional afterwards.
    let data: Vec<u64> = (0..100).collect();
    assert_eq!(par::reduce(&pool, 4, &sum::<u64>(), &data), 4950);
}

#[test]
fn scan_with_more_ranks_than_data_is_consistent() {
    // Extreme decomposition: 8 ranks, 2 elements.
    let outcome = Runtime::new(8).run(|comm| {
        let a = DistVector::generate(comm, 2, |i| i as i64 + 5);
        a.scan(&sum::<i64>(), ScanKind::Inclusive).gather_to_all()
    });
    for prefix in outcome.results {
        assert_eq!(prefix, vec![5, 11]);
    }
}
