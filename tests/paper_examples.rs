//! Cross-crate integration tests pinning every worked example in the
//! paper, executed on all three engines (sequential, shared-memory,
//! message-passing) — the end-to-end statement of the global-view
//! abstraction: *the call site does not change when the execution model
//! does*.

use global_view::prelude::*;
use gv_executor::{chunk_ranges, Pool};
use gv_msgpass::Runtime;

/// The ordered set used throughout the paper's §1 and §3.
const PAPER_SET: [i64; 10] = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3];

fn blocks<T: Clone>(data: &[T], p: usize) -> Vec<Vec<T>> {
    chunk_ranges(data.len(), p)
        .map(|r| data[r].to_vec())
        .collect()
}

/// Runs a reduction on all three engines and asserts agreement.
fn reduce_everywhere<Op>(make_op: impl Fn() -> Op + Send + Sync, data: &[Op::In]) -> Op::Out
where
    Op: ReduceScanOp + Sync,
    Op::In: Clone + Sync + Send,
    Op::State: Clone + Send + 'static,
    Op::Out: PartialEq + std::fmt::Debug + Send,
{
    let sequential = gv_core::seq::reduce(&make_op(), data);
    let pool = Pool::new(2);
    for parts in [1, 3, 10] {
        let par = gv_core::par::reduce(&pool, parts, &make_op(), data);
        assert_eq!(par, sequential, "shared-memory engine, parts={parts}");
    }
    for p in [1usize, 2, 5] {
        let chunks = blocks(data, p);
        let outcome = Runtime::new(p).run(|comm| {
            gv_rsmpi::reduce_all(comm, &make_op(), &chunks[comm.rank()])
        });
        for got in outcome.results {
            assert_eq!(got, sequential, "message-passing engine, p={p}");
        }
    }
    sequential
}

#[test]
fn section1_sum_reduction_is_55() {
    assert_eq!(reduce_everywhere(sum::<i64>, &PAPER_SET), 55);
}

#[test]
fn section1_scans() {
    let inclusive = gv_core::seq::scan(&sum::<i64>(), &PAPER_SET, ScanKind::Inclusive);
    assert_eq!(inclusive, vec![6, 13, 19, 22, 30, 32, 40, 44, 52, 55]);
    let exclusive = gv_core::seq::scan(&sum::<i64>(), &PAPER_SET, ScanKind::Exclusive);
    assert_eq!(exclusive, vec![0, 6, 13, 19, 22, 30, 32, 40, 44, 52]);
}

#[test]
fn section311_mink() {
    // `minimums = mink(integer, k) reduce A` with k = 3 over the §1 set.
    let got = reduce_everywhere(|| MinK::<i64>::new(3), &PAPER_SET);
    assert_eq!(got, vec![2, 3, 3]);
}

#[test]
fn section312_mini() {
    // `var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);`
    let pairs: Vec<(i64, usize)> = PAPER_SET.iter().copied().zip(1..).collect();
    let got = reduce_everywhere(mini::<i64, usize>, &pairs);
    assert_eq!(got, Some((2, 6)));
}

#[test]
fn section313_counts_reduce_and_scan() {
    let octants: Vec<usize> = PAPER_SET.iter().map(|&o| o as usize - 1).collect();
    let counts = reduce_everywhere(|| Counts::new(8), &octants);
    assert_eq!(counts, vec![0, 1, 2, 1, 0, 2, 1, 3]);

    // Scan rankings across all engines.
    let expected = vec![1u64, 1, 2, 1, 1, 1, 2, 1, 3, 2];
    let seq = gv_core::seq::scan(&BucketRank::new(8), &octants, ScanKind::Inclusive);
    assert_eq!(seq, expected);
    let pool = Pool::new(2);
    for parts in [1, 2, 7] {
        let par = gv_core::par::scan(&pool, parts, &BucketRank::new(8), &octants, ScanKind::Inclusive);
        assert_eq!(par, expected);
    }
    for p in [1usize, 3, 10] {
        let chunks = blocks(&octants, p);
        let outcome = Runtime::new(p).run(|comm| {
            gv_rsmpi::scan(comm, &BucketRank::new(8), &chunks[comm.rank()], ScanKind::Inclusive)
        });
        let flat: Vec<u64> = outcome.results.into_iter().flatten().collect();
        assert_eq!(flat, expected, "p={p}");
    }
}

#[test]
fn section314_sorted() {
    assert!(!reduce_everywhere(Sorted::<i64>::new, &PAPER_SET));
    let mut ascending = PAPER_SET.to_vec();
    ascending.sort();
    assert!(reduce_everywhere(Sorted::<i64>::new, &ascending));
}

#[test]
fn section2_local_view_reduces_to_global_view_for_monoids() {
    // "If the input type, output type, and state type are the same, then
    // the global-view abstraction reduces to the local-view abstraction."
    struct GcdMonoid;
    impl Monoid for GcdMonoid {
        type T = u64;
        fn identity(&self) -> u64 {
            0
        }
        fn combine(&self, a: &mut u64, b: &u64) {
            let (mut x, mut y) = (*a, *b);
            while y != 0 {
                (x, y) = (y, x % y);
            }
            *a = x;
        }
    }
    let data: Vec<u64> = vec![24, 36, 60, 96];
    let got = reduce_everywhere(|| MonoidOp(GcdMonoid), &data);
    assert_eq!(got, 12);
}

#[test]
fn mean_variance_showcase_agrees_across_engines() {
    let data: Vec<f64> = (0..5_000).map(|i| ((i * 73) % 997) as f64 / 13.0).collect();
    let sequential = gv_core::seq::reduce(&MeanVar, &data);
    for p in [2usize, 7] {
        let chunks = blocks(&data, p);
        let outcome = Runtime::new(p).run(|comm| {
            gv_rsmpi::reduce_all(comm, &MeanVar, &chunks[comm.rank()])
        });
        for got in outcome.results {
            assert_eq!(got.count, sequential.count);
            assert!((got.mean - sequential.mean).abs() < 1e-9);
            assert!((got.variance - sequential.variance).abs() < 1e-6);
        }
    }
}
