//! The operator contract, checked operator by operator.
//!
//! `assert_op_laws` is a reusable suite that exercises every law the
//! `ReduceScanOp` documentation demands — identity, combine
//! associativity, decomposition invariance, agreement of the
//! sequential / shared-memory / message-passing engines, and honesty of
//! the `COMMUTATIVE` flag — and it is applied below to every operator
//! the `gv_core::ops` library ships.
//!
//! Inputs are generated deterministically from fixed `gv-testkit` seeds,
//! so a failure here is always reproducible by rerunning the test.
//! `MeanVar` is the one exception to exact-equality laws (floating-point
//! merge is only associative up to rounding); it gets a tolerance-based
//! variant at the bottom.

use gv_core::op::{accumulate_block, combine_all, ReduceScanOp, ScanKind};
use gv_core::ops::builtin::{
    band, bor, bxor, land, lor, lxor, max, maxloc, min, minloc, prod, sum, Sum,
};
use gv_core::ops::counts::{BucketRank, Counts};
use gv_core::ops::histogram::Histogram;
use gv_core::ops::kadane::MaxSubarray;
use gv_core::ops::mink::{MaxK, MinK};
use gv_core::ops::minloc::{maxi, mini};
use gv_core::ops::minmax::minmax;
use gv_core::ops::runs::LongestRun;
use gv_core::ops::segmented::Segmented;
use gv_core::ops::sorted::{Sorted, SortedPaperExact};
use gv_core::ops::stats::MeanVar;
use gv_core::ops::topk::TopBottomK;
use gv_core::ops::translate::Translated;
use gv_core::{par, seq};
use gv_executor::{chunk_ranges, Pool};
use gv_msgpass::Runtime;
use gv_testkit::rng::TestRng;

// ---------------------------------------------------------------------
// The reusable law suite.
// ---------------------------------------------------------------------

/// Accumulates `block` into a fresh identity state (hooks included).
fn state_of<Op: ReduceScanOp + ?Sized>(op: &Op, block: &[Op::In]) -> Op::State {
    let mut s = op.ident();
    accumulate_block(op, &mut s, block);
    s
}

/// Split points for the associativity / commutativity checks: a handful
/// of deterministic 3-way partitions of `0..n`, including degenerate
/// ones (empty outer pieces, empty middle).
fn three_way_splits(n: usize) -> Vec<(usize, usize)> {
    let mut splits = vec![(0, 0), (0, n), (n, n), (n / 3, 2 * n / 3), (n / 2, n / 2)];
    if n >= 1 {
        splits.push((1, n));
        splits.push((0, n - 1));
    }
    splits
}

/// Checks every exact-equality law of the operator contract on each of
/// the given inputs. Panics with `name` and the failing case index.
fn assert_op_laws<Op>(name: &str, op: &Op, inputs: &[Vec<Op::In>])
where
    Op: ReduceScanOp + Sync,
    Op::In: Clone + Sync,
    Op::State: Clone + Send + 'static,
    Op::Out: PartialEq + std::fmt::Debug + Send,
{
    let pool = Pool::new(2);

    // Law 1: reducing nothing is the generated identity.
    assert_eq!(
        seq::reduce(op, &[]),
        op.red_gen(op.ident()),
        "{name}: reduce of [] != red_gen(ident)"
    );

    for (case, data) in inputs.iter().enumerate() {
        let n = data.len();
        let whole = state_of(op, data);
        let expected = op.red_gen(whole.clone());

        // Law 2: the identity is a left and right unit for combine.
        let mut left = op.ident();
        op.combine(&mut left, whole.clone());
        assert_eq!(
            op.red_gen(left),
            expected,
            "{name}[case {case}]: combine(ident, s) != s"
        );
        let mut right = whole.clone();
        op.combine(&mut right, op.ident());
        assert_eq!(
            op.red_gen(right),
            expected,
            "{name}[case {case}]: combine(s, ident) != s"
        );

        // Law 3: combine is associative across any ordered 3-way split.
        for (i, j) in three_way_splits(n) {
            let a = state_of(op, &data[..i]);
            let b = state_of(op, &data[i..j]);
            let c = state_of(op, &data[j..]);
            let mut ab_c = a.clone();
            op.combine(&mut ab_c, b.clone());
            op.combine(&mut ab_c, c.clone());
            let mut bc = b;
            op.combine(&mut bc, c);
            let mut a_bc = a;
            op.combine(&mut a_bc, bc);
            assert_eq!(
                op.red_gen(ab_c),
                op.red_gen(a_bc),
                "{name}[case {case}]: combine not associative at split ({i}, {j})"
            );
        }

        // Law 4: accumulating a block equals combining per-element
        // singleton states — the finest possible decomposition.
        let finest = combine_all(op, data.iter().map(|x| state_of(op, std::slice::from_ref(x))));
        assert_eq!(
            op.red_gen(finest),
            expected,
            "{name}[case {case}]: accumulate != combine of singletons"
        );

        // Law 5: the shared-memory engine agrees for any chunking.
        for parts in [1, 2, 3, 7] {
            assert_eq!(
                par::reduce(&pool, parts, op, data),
                expected,
                "{name}[case {case}]: par::reduce with {parts} parts disagrees"
            );
        }

        // Law 6: if the operator claims commutativity, swapping combine
        // arguments must not change the generated result.
        if Op::COMMUTATIVE {
            for (i, _) in three_way_splits(n) {
                let a = state_of(op, &data[..i]);
                let b = state_of(op, &data[i..]);
                let mut ab = a.clone();
                op.combine(&mut ab, b.clone());
                let mut ba = b;
                op.combine(&mut ba, a);
                assert_eq!(
                    op.red_gen(ab),
                    op.red_gen(ba),
                    "{name}[case {case}]: declared COMMUTATIVE but combine order matters at split {i}"
                );
            }
        }

        // Law 7: the message-passing engine agrees for several rank
        // counts (block decomposition in rank order).
        for p in [1, 2, 5] {
            let chunks: Vec<Vec<Op::In>> =
                chunk_ranges(n, p).map(|r| data[r].to_vec()).collect();
            let outcome =
                Runtime::new(p).run(|comm| gv_rsmpi::reduce_all(comm, op, &chunks[comm.rank()]));
            for out in outcome.results {
                assert_eq!(
                    out, expected,
                    "{name}[case {case}]: reduce_all on {p} ranks disagrees"
                );
            }
        }

        // Law 8: scans agree across all three engines, both kinds.
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let oracle = seq::scan(op, data, kind);
            assert_eq!(
                par::scan(&pool, 3, op, data, kind),
                oracle,
                "{name}[case {case}]: par::scan ({kind:?}) disagrees"
            );
            let p = 3;
            let chunks: Vec<Vec<Op::In>> =
                chunk_ranges(n, p).map(|r| data[r].to_vec()).collect();
            let outcome =
                Runtime::new(p).run(|comm| gv_rsmpi::scan(comm, op, &chunks[comm.rank()], kind));
            let flat: Vec<Op::Out> = outcome.results.into_iter().flatten().collect();
            assert_eq!(
                flat, oracle,
                "{name}[case {case}]: rsmpi::scan ({kind:?}) disagrees"
            );
        }
    }
}

/// Deterministic inputs: one vector per length in `LENS`, all drawn from
/// a single seeded stream so every run sees identical data.
const LENS: [usize; 4] = [0, 1, 13, 57];

fn cases<T>(seed: u64, mut gen: impl FnMut(&mut TestRng) -> T) -> Vec<Vec<T>> {
    let mut rng = TestRng::new(seed);
    LENS.iter()
        .map(|&n| (0..n).map(|_| gen(&mut rng)).collect())
        .collect()
}

// ---------------------------------------------------------------------
// The whole operator library, one law-suite call per operator.
// ---------------------------------------------------------------------

#[test]
fn builtin_arithmetic_monoids_obey_the_laws() {
    assert_op_laws("sum<i64>", &sum::<i64>(), &cases(1, |r| r.i64_in(-1000..1000)));
    // Tiny factors keep 57-element products inside i64.
    assert_op_laws("prod<i64>", &prod::<i64>(), &cases(2, |r| r.i64_in(-2..3)));
    assert_op_laws("min<i64>", &min::<i64>(), &cases(3, |r| r.i64_in(-1_000_000..1_000_000)));
    assert_op_laws("max<i64>", &max::<i64>(), &cases(4, |r| r.i64_in(-1_000_000..1_000_000)));
}

#[test]
fn builtin_logical_and_bitwise_monoids_obey_the_laws() {
    assert_op_laws("land", &land(), &cases(5, |r| r.bool()));
    assert_op_laws("lor", &lor(), &cases(6, |r| r.bool()));
    assert_op_laws("lxor", &lxor(), &cases(7, |r| r.bool()));
    assert_op_laws("band<u64>", &band::<u64>(), &cases(8, |r| r.next_u64()));
    assert_op_laws("bor<u64>", &bor::<u64>(), &cases(9, |r| r.next_u64()));
    assert_op_laws("bxor<u64>", &bxor::<u64>(), &cases(10, |r| r.next_u64()));
}

#[test]
fn builtin_location_monoids_obey_the_laws() {
    // Narrow value range so ties (and MPI's smaller-location rule) are hit.
    let pairs = |seed| cases(seed, |r: &mut TestRng| (r.i64_in(-20..20), r.below(100)));
    assert_op_laws("minloc<i64,u64>", &minloc::<i64, u64>(), &pairs(11));
    assert_op_laws("maxloc<i64,u64>", &maxloc::<i64, u64>(), &pairs(12));
    assert_op_laws("mini<i64,u64>", &mini::<i64, u64>(), &pairs(13));
    assert_op_laws("maxi<i64,u64>", &maxi::<i64, u64>(), &pairs(14));
}

#[test]
fn structured_state_ops_obey_the_laws() {
    assert_op_laws("MinK(5)", &MinK::<i64>::new(5), &cases(20, |r| r.i64_in(-500..500)));
    assert_op_laws("MaxK(3)", &MaxK::<i64>::new(3), &cases(21, |r| r.i64_in(-500..500)));
    assert_op_laws("Counts(8)", &Counts::new(8), &cases(22, |r| r.usize_in(0..8)));
    assert_op_laws("BucketRank(8)", &BucketRank::new(8), &cases(23, |r| r.usize_in(0..8)));
    assert_op_laws(
        "Histogram(0..100, 8 bins)",
        &Histogram::uniform(0.0, 100.0, 8),
        &cases(24, |r| r.f64_in(-25.0..125.0)),
    );
    assert_op_laws("minmax<i64>", &minmax::<i64>(), &cases(25, |r| r.i64_in(-400..400)));
    assert_op_laws(
        "TopBottomK(4)",
        &TopBottomK::<i64, u64>::new(4),
        &cases(26, |r: &mut TestRng| (r.i64_in(-100..100), r.below(1000))),
    );
}

#[test]
fn translate_form_ops_obey_the_laws() {
    assert_op_laws(
        "Translated(sum<i64>)",
        &Translated(sum::<i64>()),
        &cases(30, |r| r.i64_in(-1000..1000)),
    );
    assert_op_laws(
        "Translated(MinK(4))",
        &Translated(MinK::<i64>::new(4)),
        &cases(31, |r| r.i64_in(-500..500)),
    );
}

#[test]
fn non_commutative_ops_obey_the_laws() {
    assert_op_laws("MaxSubarray", &MaxSubarray, &cases(40, |r| r.i64_in(-50..50)));
    // A 3-symbol alphabet produces genuine runs that straddle chunk seams.
    assert_op_laws("LongestRun", &LongestRun::<i64>::new(), &cases(41, |r| r.i64_in(0..3)));
    assert_op_laws(
        "Segmented(Sum)",
        &Segmented(Sum::<i64>::default()),
        &cases(42, |r: &mut TestRng| (r.i64_in(-100..100), r.bool())),
    );

    // Sorted-ness checks see both random (almost surely unsorted) and
    // genuinely sorted inputs, so both verdicts cross chunk seams.
    let mut sortedness_inputs = cases(43, |r: &mut TestRng| r.i64_in(-100..100));
    sortedness_inputs.push((0..40).collect());
    assert_op_laws("Sorted", &Sorted::<i64>::new(), &sortedness_inputs);
    assert_op_laws("SortedPaperExact", &SortedPaperExact::<i64>::new(), &sortedness_inputs);
}

// ---------------------------------------------------------------------
// Directed checks the generic suite cannot express.
// ---------------------------------------------------------------------

#[test]
#[allow(clippy::assertions_on_constants)] // pinning compile-time flags is the point
fn non_commutative_ops_declare_it() {
    assert!(!<MaxSubarray as ReduceScanOp>::COMMUTATIVE);
    assert!(!<LongestRun<i64> as ReduceScanOp>::COMMUTATIVE);
    assert!(!<Segmented<Sum<i64>> as ReduceScanOp>::COMMUTATIVE);
    assert!(!<Sorted<i64> as ReduceScanOp>::COMMUTATIVE);
    assert!(!<SortedPaperExact<i64> as ReduceScanOp>::COMMUTATIVE);
    // Translated inherits the flag from the operator it wraps.
    assert!(!<Translated<Sorted<i64>> as ReduceScanOp>::COMMUTATIVE);
    assert!(<Translated<MinK<i64>> as ReduceScanOp>::COMMUTATIVE);
}

/// A positive witness that combine order *matters* for the sorted-ness
/// operators: the blocks [2] and [1] are sorted in the order [1],[2] but
/// not in the order [2],[1]. Guards against anyone flipping these to
/// COMMUTATIVE for a cheap speedup.
#[test]
fn sortedness_combine_order_is_observable() {
    fn witness<Op>(name: &str, op: &Op)
    where
        Op: ReduceScanOp<In = i64, Out = bool>,
        Op::State: Clone,
    {
        let two = state_of(op, &[2]);
        let one = state_of(op, &[1]);
        let mut ascending = one.clone();
        op.combine(&mut ascending, two.clone());
        assert!(op.red_gen(ascending), "{name}: [1] then [2] must be sorted");
        let mut descending = two;
        op.combine(&mut descending, one);
        assert!(!op.red_gen(descending), "{name}: [2] then [1] must not be sorted");
    }
    witness("Sorted", &Sorted::<i64>::new());
    witness("SortedPaperExact", &SortedPaperExact::<i64>::new());
}

// ---------------------------------------------------------------------
// Block-kernel dispatch laws (`gv_core::kernel`): the vectorized path
// must be bit-identical to the scalar path for regrouping-invariant
// operators, and bit-identical to the *pinned-regrouping reference* for
// float sums/products — at every length around the lane-width seams.
// ---------------------------------------------------------------------

mod kernel_laws {
    use super::*;
    use gv_core::kernel::{self, LANES};
    use gv_core::op::{accumulate_block_scalar, rescan_block, rescan_block_scalar};

    /// Every length from empty through four full lane blocks plus a
    /// ragged tail: covers the serial short-block path, the exact lane
    /// boundary, and every remainder length that matters.
    fn lengths() -> impl Iterator<Item = usize> {
        0..=(4 * LANES + 3)
    }

    /// Kernel accumulate and scans must match the forced-scalar loop
    /// bit-for-bit on every prefix length of `data`.
    fn assert_dispatch_exact<Op>(name: &str, op: &Op, data: &[Op::In])
    where
        Op: ReduceScanOp,
        Op::In: Clone,
        Op::State: Clone,
        Op::Out: PartialEq + std::fmt::Debug,
    {
        assert!(data.len() >= 4 * LANES + 3, "{name}: test data too short");
        for n in lengths() {
            let block = &data[..n];
            let mut ks = op.ident();
            accumulate_block(op, &mut ks, block);
            let mut ss = op.ident();
            accumulate_block_scalar(op, &mut ss, block);
            assert_eq!(
                op.red_gen(ks),
                op.red_gen(ss),
                "{name}: kernel reduce != scalar reduce at n={n}"
            );
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                let mut kstate = op.ident();
                let mut kout = Vec::new();
                rescan_block(op, &mut kstate, block, kind, &mut kout);
                let mut sstate = op.ident();
                let mut sout = Vec::new();
                rescan_block_scalar(op, &mut sstate, block, kind, &mut sout);
                assert_eq!(kout, sout, "{name}: kernel scan != scalar scan at n={n} {kind:?}");
                assert_eq!(
                    op.red_gen(kstate),
                    op.red_gen(sstate),
                    "{name}: scan carry diverged at n={n} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn integer_kernels_are_bit_identical_to_scalar() {
        let mut rng = TestRng::new(60);
        let n = 4 * LANES + 3;
        let i64s: Vec<i64> = (0..n).map(|_| rng.i64_in(-1000..1000)).collect();
        assert_dispatch_exact("sum<i64>", &sum::<i64>(), &i64s);
        assert_dispatch_exact("min<i64>", &min::<i64>(), &i64s);
        assert_dispatch_exact("max<i64>", &max::<i64>(), &i64s);
        // ±1 factors keep long products from collapsing to zero, so the
        // comparison stays meaningful at every length.
        let signs: Vec<i64> = (0..n).map(|_| if rng.bool() { 1 } else { -1 }).collect();
        assert_dispatch_exact("prod<i64>", &prod::<i64>(), &signs);
        // Wrapping overflow must regroup exactly too.
        let big: Vec<i64> = (0..n).map(|_| rng.i64_in(i64::MAX / 2..i64::MAX)).collect();
        assert_dispatch_exact("sum<i64> wrapping", &sum::<i64>(), &big);
    }

    #[test]
    fn bitwise_and_logical_kernels_are_bit_identical_to_scalar() {
        let mut rng = TestRng::new(61);
        let n = 4 * LANES + 3;
        let words: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        assert_dispatch_exact("band<u64>", &band::<u64>(), &words);
        assert_dispatch_exact("bor<u64>", &bor::<u64>(), &words);
        assert_dispatch_exact("bxor<u64>", &bxor::<u64>(), &words);
        let bools: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
        assert_dispatch_exact("land", &land(), &bools);
        assert_dispatch_exact("lor", &lor(), &bools);
        assert_dispatch_exact("lxor", &lxor(), &bools);
    }

    #[test]
    fn bucketed_kernels_are_bit_identical_to_scalar() {
        let mut rng = TestRng::new(62);
        let n = 4 * LANES + 3;
        let buckets: Vec<usize> = (0..n).map(|_| rng.usize_in(0..8)).collect();
        assert_dispatch_exact("Counts(8)", &Counts::new(8), &buckets);
        assert_dispatch_exact("BucketRank(8)", &BucketRank::new(8), &buckets);
        let values: Vec<f64> = (0..n).map(|_| rng.f64_in(-25.0..125.0)).collect();
        // Counting is exact whatever the dispatch, even over float inputs.
        assert_dispatch_exact(
            "Histogram(uniform)",
            &Histogram::uniform(0.0, 100.0, 8),
            &values,
        );
        assert_dispatch_exact(
            "Histogram(explicit)",
            &Histogram::new(vec![-10.0, 0.5, 40.0, 99.0]),
            &values,
        );
    }

    #[test]
    fn float_min_max_kernels_are_bit_identical_to_scalar() {
        // Comparison-based folds return one of the inputs, so for NaN-free
        // data any regrouping is value-identical — the kernels must be
        // bit-identical to the scalar loop (the NaN caveat is documented
        // in `gv_core::kernel`).
        let mut rng = TestRng::new(63);
        let n = 4 * LANES + 3;
        let values: Vec<f64> = (0..n).map(|_| rng.f64_in(-1e9..1e9)).collect();
        assert_dispatch_exact("min<f64>", &min::<f64>(), &values);
        assert_dispatch_exact("max<f64>", &max::<f64>(), &values);
    }

    #[test]
    fn float_sum_prod_kernels_match_the_pinned_regrouping_reference() {
        // Float addition regroups under the lane fold, so the kernel is
        // *not* bit-identical to the scalar loop — the contract is that it
        // is bit-identical to the portable pinned-regrouping reference
        // (same LANES, same fold order) on every run and every ISA.
        fn assert_matches_reference<Op>(name: &str, op: &Op, data: &[f64], f: fn(f64, f64) -> f64)
        where
            Op: ReduceScanOp<In = f64, State = f64, Out = f64>,
        {
            let ident = op.ident();
            for len in lengths() {
                let block = &data[..len];
                let mut state = op.ident();
                accumulate_block(op, &mut state, block);
                let expected = f(ident, kernel::fold_block_reference(ident, block, f));
                assert_eq!(
                    state.to_bits(),
                    expected.to_bits(),
                    "{name}: kernel reduce != pinned reference at n={len}"
                );
                for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                    let mut kstate = op.ident();
                    let mut kout = Vec::new();
                    rescan_block(op, &mut kstate, block, kind, &mut kout);
                    let mut rcarry = ident;
                    let mut rout = Vec::new();
                    kernel::scan_block_network_reference(&mut rcarry, block, &mut rout, f, kind);
                    assert_eq!(
                        kout.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        rout.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{name}: kernel scan != pinned reference at n={len} {kind:?}"
                    );
                    assert_eq!(kstate.to_bits(), rcarry.to_bits());
                }
            }
        }

        let mut rng = TestRng::new(64);
        let n = 4 * LANES + 3;
        let sums: Vec<f64> = (0..n).map(|_| rng.f64_in(-1e6..1e6)).collect();
        let muls: Vec<f64> = (0..n).map(|_| rng.f64_in(0.9..1.1)).collect();
        assert_matches_reference("sum<f64>", &sum::<f64>(), &sums, |x, y| x + y);
        assert_matches_reference("prod<f64>", &prod::<f64>(), &muls, |x, y| x * y);
    }

    #[test]
    fn float_results_are_deterministic_across_runs_and_thread_counts() {
        // For a fixed decomposition (`parts`), the float result must be
        // bit-identical however many worker threads execute it and however
        // many times it runs — the kernels' regrouping depends only on the
        // pinned LANES/SCAN_GROUP constants, never on scheduling.
        let mut rng = TestRng::new(65);
        let data: Vec<f64> = (0..10_000).map(|_| rng.f64_in(-1e6..1e6)).collect();
        let op = sum::<f64>();
        let parts = 7;
        let reference_reduce = par::reduce(&Pool::new(1), parts, &op, &data);
        let reference_scan = par::scan(&Pool::new(1), parts, &op, &data, ScanKind::Inclusive);
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            for _run in 0..3 {
                let red = par::reduce(&pool, parts, &op, &data);
                assert_eq!(
                    red.to_bits(),
                    reference_reduce.to_bits(),
                    "reduce diverged at threads={threads}"
                );
                let scan = par::scan(&pool, parts, &op, &data, ScanKind::Inclusive);
                assert!(
                    scan.iter()
                        .zip(&reference_scan)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "scan diverged at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn kernel_dispatch_is_observed_in_the_counters() {
        let (k0, s0) = kernel::dispatch_counts();
        seq::reduce(&sum::<i64>(), &[1i64; 256]);
        let (k1, _) = kernel::dispatch_counts();
        assert!(k1 > k0, "built-in reduce should dispatch to a kernel");
        struct Opaque;
        impl gv_core::monoid::Monoid for Opaque {
            type T = i64;
            fn identity(&self) -> i64 {
                0
            }
            fn combine(&self, a: &mut i64, b: &i64) {
                *a += *b;
            }
        }
        seq::reduce(&gv_core::monoid::MonoidOp(Opaque), &[1i64; 256]);
        let (_, s2) = kernel::dispatch_counts();
        assert!(s2 > s0, "user-defined op without kernels should stay scalar");
    }
}

/// `MeanVar` merges running moments; exact equality across different
/// associations fails in floating point, so it gets the law suite's
/// shape with tolerances instead of `assert_eq!`.
#[test]
fn meanvar_obeys_the_laws_up_to_rounding() {
    let op = MeanVar;
    let inputs = cases(50, |r: &mut TestRng| r.f64_in(-1e6..1e6));
    let pool = Pool::new(2);

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));

    for data in &inputs {
        let expected = seq::reduce(&op, data);

        // Identity unit (exact: merging a zero-count state is exact).
        let mut s = state_of(&op, data);
        op.combine(&mut s, op.ident());
        let merged = op.red_gen(s);
        assert_eq!(merged.count, expected.count);
        assert!(close(merged.mean, expected.mean));

        // Chunking invariance up to rounding, through both engines.
        for parts in [1, 3, 7] {
            let got = par::reduce(&pool, parts, &op, data);
            assert_eq!(got.count, expected.count);
            assert!(close(got.mean, expected.mean), "parts={parts}");
            assert!(close(got.variance, expected.variance), "parts={parts}");
        }
        let p = 3;
        let chunks: Vec<Vec<f64>> =
            chunk_ranges(data.len(), p).map(|r| data[r].to_vec()).collect();
        let outcome =
            Runtime::new(p).run(|comm| gv_rsmpi::reduce_all(comm, &op, &chunks[comm.rank()]));
        for got in outcome.results {
            assert_eq!(got.count, expected.count);
            assert!(close(got.mean, expected.mean));
            assert!(close(got.variance, expected.variance));
        }
    }
}
