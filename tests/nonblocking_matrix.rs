//! Exhaustive small-`p` matrix over the *non-blocking* collectives —
//! the request-handle mirror of `collectives_matrix.rs`.
//!
//! Every rank count from 1 through 9 × every `i*` entry point (rooted
//! `ireduce` at every root with all `p` requests in flight, `ibcast`
//! from every root in flight at once, the cost-driven `iallreduce`
//! selector plus the named recursive-doubling schedule, both scans,
//! ring `ireduce_scatter_block`, and the three-way splittable selector)
//! × a commutative payload (u64 sum) and a non-commutative one (string
//! concatenation) — all checked against the same sequential oracle the
//! blocking matrix uses, but with multiple requests deliberately in
//! flight and harvested out of issue order.
//!
//! Two edge-case tests pin the request lifecycle contract: dropping a
//! request without waiting detaches its schedule (peers still complete,
//! nothing hangs), and waiting twice is the typed
//! [`RequestError::AlreadyCompleted`], never a deadlock.

use gv_msgpass::{wait_all, Request, RequestError, Runtime};

/// Runs one communicator through every request-based collective with
/// requests overlapped, asserting each result against the rank-order
/// sequential oracle.
///
/// `seg_contrib(rank, segment)` feeds `ireduce_scatter_block`, which
/// combines in rotated ring order and is therefore only exercised when
/// `commutative` holds.
fn exercise_nonblocking<T>(
    p: usize,
    commutative: bool,
    contrib: fn(usize) -> T,
    seg_contrib: fn(usize, usize) -> T,
    combine: fn(T, T) -> T,
    ident: fn() -> T,
    wire: fn(&T) -> usize,
) where
    T: Clone + Send + PartialEq + std::fmt::Debug + 'static,
{
    Runtime::new(p).run(|comm| {
        let r = comm.rank();
        let mine = contrib(r);
        let fold = |lo: usize, hi: usize| {
            let mut acc = ident();
            for rank in lo..hi {
                acc = combine(acc, contrib(rank));
            }
            acc
        };
        let total = fold(0, p);

        // Every rooted reduce in flight at once, harvested as a batch.
        let mut reduces: Vec<Request<Option<T>>> = (0..p)
            .map(|root| comm.ireduce(root, mine.clone(), wire, combine))
            .collect();
        for (root, got) in wait_all(&mut reduces)
            .expect("transport alive")
            .into_iter()
            .enumerate()
        {
            if r == root {
                assert_eq!(
                    got.as_ref(),
                    Some(&total),
                    "ireduce(root={root}) at the root, p={p}, rank={r}"
                );
            } else {
                assert!(got.is_none(), "ireduce(root={root}) off-root, p={p}, rank={r}");
            }
        }

        // Broadcasts from every root in flight at once.
        let mut bcasts: Vec<Request<T>> = (0..p)
            .map(|root| comm.ibcast(root, (r == root).then(|| contrib(root))))
            .collect();
        for (root, got) in wait_all(&mut bcasts)
            .expect("transport alive")
            .into_iter()
            .enumerate()
        {
            assert_eq!(got, contrib(root), "ibcast(root={root}), p={p}, rank={r}");
        }

        // The selector allreduce and the named recursive-doubling
        // schedule overlapped; the later one is completed *first*, by a
        // test() poll loop (each test sweeps the engine, so the earlier
        // request keeps progressing underneath).
        let mut ar = comm.iallreduce(mine.clone(), commutative, wire, combine);
        let mut rd = comm.iallreduce_recursive_doubling(mine.clone(), wire, combine);
        let rd_result = loop {
            if let Some(out) = rd.test().expect("transport alive") {
                break out;
            }
        };
        assert_eq!(rd_result, total, "iallreduce_recursive_doubling, p={p}, rank={r}");
        assert_eq!(
            ar.wait().expect("transport alive"),
            total,
            "iallreduce (selector), p={p}, rank={r}, commutative={commutative}"
        );

        // Both scans in flight; the later-issued exclusive half is
        // harvested first.
        let mut inc = comm.iscan_inclusive(mine.clone(), wire, combine);
        let mut exc = comm.iscan_exclusive(mine.clone(), ident, wire, combine);
        assert_eq!(
            exc.wait().expect("transport alive"),
            fold(0, r),
            "iscan_exclusive, p={p}, rank={r}"
        );
        assert_eq!(
            inc.wait().expect("transport alive"),
            fold(0, r + 1),
            "iscan_inclusive, p={p}, rank={r}"
        );

        // Ring reduce-scatter combines in rotated order: commutative only.
        if commutative {
            let segments: Vec<T> = (0..p).map(|j| seg_contrib(r, j)).collect();
            let mut rs = comm.ireduce_scatter_block(segments, wire, combine);
            let mut expected = ident();
            for s in 0..p {
                expected = combine(expected, seg_contrib(s, r));
            }
            assert_eq!(
                rs.wait().expect("transport alive"),
                expected,
                "ireduce_scatter_block, p={p}, rank={r}"
            );
        }
    });
}

#[test]
fn commutative_nonblocking_matrix_for_p_1_through_9() {
    for p in 1..=9 {
        // Distinct per-rank values (squares), so a dropped or duplicated
        // contribution cannot cancel out.
        exercise_nonblocking::<u64>(
            p,
            true,
            |r| (r as u64 + 1) * (r as u64 + 1),
            |s, j| (s as u64 + 1) * 100 + j as u64,
            |a, b| a + b,
            || 0,
            |_| 8,
        );
    }
}

#[test]
fn non_commutative_nonblocking_matrix_for_p_1_through_9() {
    for p in 1..=9 {
        // String concatenation detects any out-of-rank-order combine.
        exercise_nonblocking::<String>(
            p,
            false,
            |r| format!("[{r}]"),
            |_, _| String::new(),
            |mut a, b| {
                a.push_str(&b);
                a
            },
            String::new,
            |s| s.len(),
        );
    }
}

#[test]
fn splittable_nonblocking_selector_matches_oracle_for_p_1_through_9() {
    // Three wire sizes in flight at once, so the three-way selector's
    // different schedule choices (including reduce-scatter + allgather
    // at the large end) overlap on one communicator; harvested in
    // reverse issue order. Length 3 forces empty segments for p > 3.
    const LENS: [usize; 3] = [3, 64, 4096];
    for p in 1..=9usize {
        Runtime::new(p).run(move |comm| {
            let r = comm.rank();
            let mut reqs: Vec<Request<Vec<u64>>> = LENS
                .iter()
                .map(|&len| {
                    let mine: Vec<u64> = (0..len).map(|i| (r * len + i) as u64).collect();
                    comm.iallreduce_splittable(
                        mine,
                        true,
                        gv_core::split::split_vec_segments,
                        gv_core::split::unsplit_vec_segments,
                        |v: &Vec<u64>| v.len() * 8,
                        |mut a, b| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            a
                        },
                    )
                })
                .collect();
            for (idx, &len) in LENS.iter().enumerate().rev() {
                let got = reqs[idx].wait().expect("transport alive");
                let expected: Vec<u64> = (0..len)
                    .map(|i| (0..p).map(|q| (q * len + i) as u64).sum())
                    .collect();
                assert_eq!(got, expected, "iallreduce_splittable, p={p} len={len}");
            }
        });
    }
}

#[test]
fn dropping_requests_without_waiting_does_not_hang() {
    for p in [1usize, 2, 5, 8] {
        let total: u64 = (1..=p as u64).sum();

        // Every rank abandons its request: the detached schedules still
        // run to completion underneath the follow-up blocking collective
        // (whose drive loop sweeps the engine), and the runtime cancels
        // whatever is left at rank exit.
        let outcome = Runtime::new(p).run(move |comm| {
            let r = comm.rank() as u64;
            drop(comm.iallreduce(r + 1, true, |_| 8, |a, b| a + b));
            comm.allreduce(r + 1, true, |_| 8, |a, b| a + b)
        });
        assert!(
            outcome.results.iter().all(|&t| t == total),
            "follow-up allreduce after a universal drop, p={p}"
        );

        // Asymmetric drop: even ranks abandon, odd ranks wait — the
        // waiters depend on the droppers' detached schedules being
        // polled, which happens inside the droppers' next collective.
        if p > 1 {
            let outcome = Runtime::new(p).run(move |comm| {
                let r = comm.rank();
                let mut req = comm.iallreduce(r as u64 + 1, true, |_| 8, |a, b| a + b);
                let got = if r % 2 == 0 {
                    drop(req);
                    None
                } else {
                    Some(req.wait().expect("transport alive"))
                };
                let follow = comm.allreduce(1u64, true, |_| 8, |a, b| a + b);
                (got, follow)
            });
            for (r, (got, follow)) in outcome.results.iter().enumerate() {
                if r % 2 == 1 {
                    assert_eq!(*got, Some(total), "odd waiter, p={p}, rank={r}");
                }
                assert_eq!(*follow, p as u64, "follow-up allreduce, p={p}, rank={r}");
            }
        }
    }
}

#[test]
fn waiting_twice_is_a_typed_error_not_a_hang() {
    Runtime::new(4).run(|comm| {
        let r = comm.rank() as u64;
        let mut req = comm.iallreduce(r + 1, true, |_| 8, |a, b| a + b);
        assert_eq!(req.wait().expect("first wait"), 10);
        // The result was taken: subsequent wait/test report it typed.
        assert_eq!(req.wait(), Err(RequestError::AlreadyCompleted));
        assert_eq!(req.test(), Err(RequestError::AlreadyCompleted));

        // wait_all refuses a batch containing a consumed request up
        // front — before parking — so the mistake cannot deadlock the
        // rank. The abandoned fresh request is detached on every rank
        // alike and cancelled at exit.
        let mut batch = vec![req, comm.iallreduce(r + 1, true, |_| 8, |a, b| a + b)];
        assert_eq!(wait_all(&mut batch), Err(RequestError::AlreadyCompleted));
    });
}
