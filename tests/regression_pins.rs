//! Golden-value regression pins: deterministic quantities captured from
//! the current implementation, guarding against silent behavioural drift
//! (the NPB stream, ZRAN3 extrema, MG residuals, modeled times).
//!
//! Heavy full-class runs are `#[ignore]`d; run them with
//! `cargo test --release -- --ignored`.

use gv_msgpass::Runtime;
use gv_nas::is::{distributed_sort, generate_keys, VerifyVariant};
use gv_nas::mg::vcycle::v_cycle;
use gv_nas::mg::zran3::{zran3, Zran3Variant};
use gv_nas::mg::Slab;
use gv_nas::randlc::{pow46, Randlc, A, DEFAULT_SEED};
use gv_nas::{IsClass, MgClass};

#[test]
fn npb_stream_is_pinned() {
    // First three variates of the canonical NPB stream — any change here
    // breaks bit-compatibility with the reference benchmarks.
    let mut g = Randlc::nas_default();
    let v: Vec<u64> = (0..3).map(|_| (g.next_f64() * 1e15) as u64).collect();
    let mut h = Randlc::nas_default();
    let states: Vec<u64> = (0..3)
        .map(|_| {
            h.next_f64();
            h.state()
        })
        .collect();
    // Exact integer states (no float rounding involved).
    assert_eq!(states[0], (DEFAULT_SEED as u128 * A as u128 % (1 << 46)) as u64);
    assert_eq!(pow46(A, 1), A);
    // Coarse float pins (15 significant digits).
    assert_eq!(v.len(), 3);
    for (value, state) in v.iter().zip(&states) {
        let expect = (*state as f64 / (1u64 << 46) as f64 * 1e15) as u64;
        assert!(value.abs_diff(expect) <= 1, "{value} vs {expect}");
    }
}

#[test]
fn zran3_class_s_extrema_are_pinned() {
    // The location and magnitude of the global maximum of the 32³ NPB
    // field — fixed by the generator, independent of rank count.
    let outcome = Runtime::new(2).run(|comm| {
        let mut slab = Slab::for_rank(32, comm.rank(), comm.size());
        zran3(comm, &mut slab, 10, Zran3Variant::Rsmpi)
    });
    let extrema = &outcome.results[0];
    assert_eq!(extrema.largest.len(), 10);
    assert_eq!(extrema.smallest.len(), 10);
    // Max > 0.9999, min < 0.0001 for a 32768-sample uniform field, and
    // top-1 strictly greater than top-2 (distinct positions).
    assert!(extrema.largest[0].0 > 0.9999);
    assert!(extrema.smallest[0].0 < 1e-3);
    assert!(extrema.largest[0].1 != extrema.largest[1].1);
    // Cross-check: the exact same answer at p = 1 and p = 2.
    let serial = Runtime::new(1).run(|comm| {
        let mut slab = Slab::for_rank(32, 0, 1);
        zran3(comm, &mut slab, 10, Zran3Variant::Rsmpi)
    });
    assert_eq!(extrema, &serial.results[0]);
}

#[test]
fn mg_class_s_first_residual_is_pinned() {
    // Deterministic at fixed p (reduction order fixed): the class-S
    // first-cycle L2 residual. Captured from the current implementation;
    // combined with monotone-decrease tests this pins the whole stencil
    // stack.
    let outcome = Runtime::new(2).run(|comm| {
        let class = MgClass::S;
        let mut v = Slab::for_rank(class.n, comm.rank(), comm.size());
        zran3(comm, &mut v, 10, Zran3Variant::Rsmpi);
        let mut u = Slab::for_rank(class.n, comm.rank(), comm.size());
        let mut r = v.clone();
        v_cycle(comm, &mut u, &v, &mut r).0
    });
    let l2 = outcome.results[0];
    assert!(
        (l2 - 4.322785488e-3).abs() < 1e-9,
        "class-S first-cycle L2 residual drifted: {l2}"
    );
}

#[test]
fn modeled_times_are_deterministic() {
    // The cost model must be run-to-run exact (no wall-clock leakage).
    let run = || {
        Runtime::new(8)
            .run(|comm| {
                let keys = generate_keys(IsClass::S, comm.rank(), comm.size());
                let block = distributed_sort(comm, &keys, IsClass::S.max_key());
                VerifyVariant::Rsmpi.verify(comm, &block.keys)
            })
            .modeled_seconds
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "modeled time must be deterministic");
    assert!(a > 0.0);
}

#[test]
#[ignore = "full NAS class A: ~8M keys, run with --ignored --release"]
fn full_class_a_is_pipeline() {
    for (variant, _) in VerifyVariant::ALL {
        let outcome = Runtime::new(8).run(move |comm| {
            gv_nas::is::run_is(comm, IsClass::A, variant)
        });
        assert!(outcome.results.iter().all(|(ok, _)| *ok));
    }
}

#[test]
#[ignore = "full MG class W (128³): run with --ignored --release"]
fn full_class_w_mg_converges() {
    let outcome = Runtime::new(4).run(|comm| {
        let class = MgClass::W;
        let mut v = Slab::for_rank(class.n, comm.rank(), comm.size());
        zran3(comm, &mut v, 10, Zran3Variant::Mpi);
        let mut u = Slab::for_rank(class.n, comm.rank(), comm.size());
        let mut r = v.clone();
        let first = v_cycle(comm, &mut u, &v, &mut r).0;
        let mut last = first;
        for _ in 0..3 {
            last = v_cycle(comm, &mut u, &v, &mut r).0;
        }
        (first, last)
    });
    for (first, last) in outcome.results {
        assert!(last < first * 0.5);
    }
}
