//! Property tests of the three scan schedules and the cost-driven
//! selector, on the in-tree `gv-testkit` runner — the scan sibling of
//! `allreduce_algorithms.rs`.
//!
//! The contract under test: shifted recursive doubling, the
//! work-efficient binomial up/down-sweep, and the pipelined chain all
//! compute the same rank-ordered `(exclusive, inclusive)` prefixes as a
//! sequential scan — for every rank count in 1..17, for commutative and
//! non-commutative operators, and for empty states — while each schedule
//! keeps its characteristic message count and the selector never picks an
//! ineligible schedule.
//!
//! Every failure message prints a case seed; rerun just that input with
//! `GV_TESTKIT_SEED=<seed> cargo test <test name>`.

use gv_testkit::prop::{check, i64s, usizes, vec_of, Config};
use gv_testkit::prop_assert_eq;

use gv_core::op::ScanKind;
use gv_core::ops::builtin::sum;
use gv_core::split::{split_vec_segments, unsplit_vec_segments};
use gv_msgpass::{CallKind, CostModel, Runtime, ScanAlgorithm};

fn cfg() -> Config {
    Config::new(128)
}

/// Sequential oracle: rank-order prefix folds of one value per rank.
fn prefix_oracle(per_rank: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let inclusive = gv_core::seq::scan(&sum::<i64>(), per_rank, ScanKind::Inclusive);
    let exclusive = gv_core::seq::scan(&sum::<i64>(), per_rank, ScanKind::Exclusive);
    (exclusive, inclusive)
}

#[test]
fn scalar_schedules_agree_with_the_sequential_oracle() {
    check(
        "scalar_schedules_agree_with_the_sequential_oracle",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 1..17), usizes(1..17)),
        |(values, p)| {
            let p = *p;
            let per_rank: Vec<i64> = (0..p)
                .map(|r| values.get(r % values.len()).copied().unwrap_or(0))
                .collect();
            let (expected_ex, expected_inc) = prefix_oracle(&per_rank);
            let outcome = Runtime::new(p).run(|comm| {
                let mine = per_rank[comm.rank()];
                let selector = comm.scan_both(mine, |_| 8, |a, b| a + b);
                let rd = comm.scan_both_recursive_doubling(mine, |_| 8, |a, b| a + b);
                let bin = comm.scan_both_binomial(mine, |_| 8, |a, b| a + b);
                (selector, rd, bin)
            });
            for (r, (selector, rd, bin)) in outcome.results.into_iter().enumerate() {
                for (name, (ex, inc)) in [("selector", selector), ("rd", rd), ("binomial", bin)] {
                    prop_assert_eq!(inc, expected_inc[r], "{name} inclusive at rank {r}");
                    if r == 0 {
                        prop_assert_eq!(ex, None, "{name} rank 0 has no exclusive prefix");
                    } else {
                        prop_assert_eq!(ex, Some(expected_ex[r]), "{name} exclusive at rank {r}");
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn pipelined_chain_agrees_on_splittable_states() {
    // Vector states of width 0..24 with element-wise sum: widths below
    // the segment count exercise empty segments.
    check(
        "pipelined_chain_agrees_on_splittable_states",
        &cfg(),
        &(vec_of(i64s(-500..500), 0..24), usizes(1..17), usizes(1..9)),
        |(data, p, segments)| {
            let (p, segments) = (*p, *segments);
            let width = data.len();
            let add = |mut a: Vec<i64>, b: Vec<i64>| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            };
            let wire = |v: &Vec<i64>| v.len() * 8;
            let outcome = Runtime::new(p).run(|comm| {
                let r = comm.rank() as i64;
                let mine: Vec<i64> = data.iter().map(|&x| x + r).collect();
                let chain = comm.scan_both_pipelined_chain(
                    mine.clone(),
                    segments,
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                let selector = comm.scan_both_splittable(
                    mine.clone(),
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                let rd = comm.scan_both_recursive_doubling(mine, wire, add);
                (chain, selector, rd)
            });
            for (r, (chain, selector, rd)) in outcome.results.into_iter().enumerate() {
                let expected_inc: Vec<i64> = (0..width)
                    .map(|i| (0..=r as i64).map(|q| data[i] + q).sum())
                    .collect();
                let expected_ex: Vec<i64> = (0..width)
                    .map(|i| (0..r as i64).map(|q| data[i] + q).sum())
                    .collect();
                for (name, (ex, inc)) in [("chain", chain), ("selector", selector), ("rd", rd)] {
                    prop_assert_eq!(&inc, &expected_inc, "{name} inclusive at rank {r}");
                    if r == 0 {
                        prop_assert_eq!(&ex, &None, "{name} rank 0");
                    } else {
                        prop_assert_eq!(ex.as_ref(), Some(&expected_ex), "{name} rank {r}");
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn noncommutative_schedules_preserve_rank_order() {
    check(
        "noncommutative_schedules_preserve_rank_order",
        &cfg(),
        &usizes(1..17),
        |p| {
            let p = *p;
            let concat = |a: String, b: String| a + &b;
            let wire = |s: &String| s.len();
            let outcome = Runtime::new(p).run(|comm| {
                let mine = format!("[{}]", comm.rank());
                let selector = comm.scan_both(mine.clone(), wire, concat);
                let rd = comm.scan_both_recursive_doubling(mine.clone(), wire, concat);
                let bin = comm.scan_both_binomial(mine, wire, concat);
                // Chain needs a splittable state; element-wise string
                // concatenation distributes over contiguous chunking and
                // is still non-commutative.
                let rows = vec![format!("a{}", comm.rank()), format!("b{}", comm.rank())];
                let chain = comm.scan_both_pipelined_chain(
                    rows,
                    2,
                    split_vec_segments,
                    unsplit_vec_segments,
                    |v: &Vec<String>| v.iter().map(String::len).sum(),
                    |mut a: Vec<String>, b: Vec<String>| {
                        for (x, y) in a.iter_mut().zip(b) {
                            x.push_str(&y);
                        }
                        a
                    },
                );
                (selector, rd, bin, chain)
            });
            for (r, (selector, rd, bin, chain)) in outcome.results.into_iter().enumerate() {
                let expected_inc: String = (0..=r).map(|q| format!("[{q}]")).collect();
                let expected_ex: String = (0..r).map(|q| format!("[{q}]")).collect();
                for (name, (ex, inc)) in [("selector", selector), ("rd", rd), ("binomial", bin)] {
                    prop_assert_eq!(&inc, &expected_inc, "{name} rank {r}");
                    if r == 0 {
                        prop_assert_eq!(&ex, &None, "{name} rank 0");
                    } else {
                        prop_assert_eq!(ex.as_deref(), Some(expected_ex.as_str()), "{name} {r}");
                    }
                }
                let chain_a: String = (0..=r).map(|q| format!("a{q}")).collect();
                let chain_b: String = (0..=r).map(|q| format!("b{q}")).collect();
                prop_assert_eq!(&chain.1, &vec![chain_a, chain_b], "chain rank {r}");
            }
            Ok(())
        },
    );
}

#[test]
fn scan_both_counts_one_scan_call_per_schedule() {
    // The scan_both accounting convention holds for every schedule: one
    // CallKind::Scan per rank, no Exscan, and the run is attributed to
    // exactly the schedule that executed.
    for p in [1usize, 2, 5, 8] {
        for algo in ScanAlgorithm::ALL {
            let outcome = Runtime::new(p).run(move |comm| {
                let mine = comm.rank() as i64 + 1;
                match algo {
                    ScanAlgorithm::RecursiveDoubling => {
                        comm.scan_both_recursive_doubling(mine, |_| 8, |a, b| a + b);
                    }
                    ScanAlgorithm::Binomial => {
                        comm.scan_both_binomial(mine, |_| 8, |a, b| a + b);
                    }
                    ScanAlgorithm::PipelinedChain => {
                        comm.scan_both_pipelined_chain(
                            vec![mine],
                            1,
                            split_vec_segments,
                            unsplit_vec_segments,
                            |v: &Vec<i64>| v.len() * 8,
                            |mut a, b| {
                                a[0] += b[0];
                                a
                            },
                        );
                    }
                }
            });
            let name = algo.name();
            assert_eq!(outcome.stats.calls(CallKind::Scan), p as u64, "{name} p={p}");
            assert_eq!(outcome.stats.calls(CallKind::Exscan), 0, "{name} p={p}");
            assert_eq!(
                outcome.stats.scan_algorithm_calls(algo),
                p as u64,
                "{name} p={p} attribution"
            );
        }
    }
}

#[test]
fn message_counts_match_the_schedule_shapes() {
    // Shifted recursive doubling moves p·⌈log₂p⌉ − (2^⌈log₂p⌉ − 1)
    // messages; at p = 16 that is 16·4 − 15 = 49. The binomial sweeps
    // move 2(p−1) − ⌈log₂p⌉ = 26, and the chain moves (p−1)·S.
    let rd = Runtime::new(16).run(|comm| {
        comm.scan_both_recursive_doubling(1u64, |_| 8, |a, b| a + b);
    });
    assert_eq!(rd.stats.messages, 49);

    let bin = Runtime::new(16).run(|comm| {
        comm.scan_both_binomial(1u64, |_| 8, |a, b| a + b);
    });
    assert_eq!(bin.stats.messages, 26);

    let chain = Runtime::new(16).run(|comm| {
        comm.scan_both_pipelined_chain(
            vec![1u64; 6],
            3,
            split_vec_segments,
            unsplit_vec_segments,
            |v: &Vec<u64>| v.len() * 8,
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    });
    assert_eq!(chain.stats.messages, 15 * 3);
}

#[test]
fn selector_only_picks_eligible_scan_schedules() {
    check(
        "selector_only_picks_eligible_scan_schedules",
        &cfg(),
        &(usizes(1..64), usizes(0..21)),
        |(p, log_bytes)| {
            let cost = CostModel::cluster_2006();
            let bytes = 1usize << *log_bytes;
            for splittable in [true, false] {
                let picked = ScanAlgorithm::select(&cost, *p, bytes, splittable);
                if picked == ScanAlgorithm::PipelinedChain && !(splittable && *p >= 2) {
                    return Err(format!(
                        "chain selected for splittable={splittable} p={p} bytes={bytes}"
                    ));
                }
                // The pick is never strictly worse than any other
                // eligible schedule.
                for other in ScanAlgorithm::ALL {
                    if other == ScanAlgorithm::PipelinedChain && !(splittable && *p >= 2) {
                        continue;
                    }
                    let t_picked = picked.estimated_seconds(&cost, *p, bytes);
                    let t_other = other.estimated_seconds(&cost, *p, bytes);
                    if t_picked > t_other {
                        return Err(format!(
                            "{} (={t_picked}) beat by {} (={t_other}) at p={p} bytes={bytes}",
                            picked.name(),
                            other.name()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn crossover_binomial_and_chain_beat_recursive_doubling_at_64kib_p8() {
    // The acceptance pin: for a 64 KiB state at p = 8 the α–β estimate
    // ranks chain < binomial < recursive doubling, and the selector-routed
    // public entries attribute the run accordingly.
    let cost = CostModel::cluster_2006();
    let bytes = 64 << 10;
    let rd = ScanAlgorithm::RecursiveDoubling.estimated_seconds(&cost, 8, bytes);
    let bin = ScanAlgorithm::Binomial.estimated_seconds(&cost, 8, bytes);
    let chain = ScanAlgorithm::PipelinedChain.estimated_seconds(&cost, 8, bytes);
    assert!(bin < rd, "estimate: binomial={bin} rd={rd}");
    assert!(chain < bin, "estimate: chain={chain} binomial={bin}");
    assert_eq!(
        ScanAlgorithm::select(&cost, 8, bytes, false),
        ScanAlgorithm::Binomial
    );
    assert_eq!(
        ScanAlgorithm::select(&cost, 8, bytes, true),
        ScanAlgorithm::PipelinedChain
    );

    let add = |mut a: Vec<u64>, b: Vec<u64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    let wire = |v: &Vec<u64>| v.len() * 8;
    let unsplittable = Runtime::new(8).run(move |comm| {
        let state = vec![comm.rank() as u64; 8 << 10]; // 64 KiB of u64s
        comm.scan_both(state, wire, add);
    });
    assert_eq!(
        unsplittable.stats.scan_algorithm_calls(ScanAlgorithm::Binomial),
        8
    );
    let splittable = Runtime::new(8).run(move |comm| {
        let state = vec![comm.rank() as u64; 8 << 10];
        comm.scan_both_splittable(state, split_vec_segments, unsplit_vec_segments, wire, add);
    });
    assert_eq!(
        splittable
            .stats
            .scan_algorithm_calls(ScanAlgorithm::PipelinedChain),
        8
    );
    // The chain also moves strictly fewer bytes than recursive doubling
    // would: (p−1)·n against ≈(p·log p)·n.
    assert!(splittable.stats.bytes < unsplittable.stats.bytes);
}

#[test]
fn non_power_of_two_selector_matrix_picks_the_estimate_argmin() {
    // Satellite of the cost-model fix: at awkward rank counts (6, 12, 24)
    // every scan schedule must still match the sequential oracle, and the
    // selector-routed entry point must be attributed to the schedule whose
    // α–β estimate is minimal among the eligible ones. (Scan estimates
    // price aggregate traffic that the virtual clock does not serialize,
    // so the assertion is estimate-argmin, not a modeled-wall-clock bound.)
    let cost = CostModel::cluster_2006();
    let add = |mut a: Vec<i64>, b: Vec<i64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    let wire = |v: &Vec<i64>| v.len() * 8;
    for p in [6usize, 12, 24] {
        for bytes in [8usize, 4 << 10, 64 << 10, 256 << 10] {
            let elems = bytes / 8;
            let outcome = Runtime::new(p).run(move |comm| {
                let r = comm.rank() as i64;
                let mine: Vec<i64> = (0..elems as i64).map(|i| r + i).collect();
                let selector = comm.scan_both_splittable(
                    mine.clone(),
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                let rd = comm.scan_both_recursive_doubling(mine.clone(), wire, add);
                let bin = comm.scan_both_binomial(mine.clone(), wire, add);
                let chain = comm.scan_both_pipelined_chain(
                    mine,
                    4,
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                (selector, rd, bin, chain)
            });
            for (r, (selector, rd, bin, chain)) in outcome.results.into_iter().enumerate() {
                let expected_inc: Vec<i64> = (0..elems as i64)
                    .map(|i| (0..=r as i64).map(|q| q + i).sum())
                    .collect();
                let expected_ex: Vec<i64> = (0..elems as i64)
                    .map(|i| (0..r as i64).map(|q| q + i).sum())
                    .collect();
                let runs = [("selector", selector), ("rd", rd), ("bin", bin), ("chain", chain)];
                for (name, (ex, inc)) in runs {
                    assert_eq!(inc, expected_inc, "{name} inclusive p={p} bytes={bytes} r={r}");
                    if r == 0 {
                        assert_eq!(ex, None, "{name} rank 0 p={p} bytes={bytes}");
                    } else {
                        assert_eq!(
                            ex.as_ref(),
                            Some(&expected_ex),
                            "{name} exclusive p={p} bytes={bytes} r={r}"
                        );
                    }
                }
                // Avoid quadratic oracle cost at the largest cells: one
                // rank's worth of checking per (p, bytes) is plenty.
                if bytes >= 64 << 10 && r >= 1 {
                    break;
                }
            }
            // The selector-routed run (one call per rank beyond the three
            // explicit ones) went to the estimate-argmin schedule.
            let best = ScanAlgorithm::ALL
                .into_iter()
                .min_by(|a, b| {
                    a.estimated_seconds(&cost, p, bytes)
                        .total_cmp(&b.estimated_seconds(&cost, p, bytes))
                })
                .unwrap();
            let t_best = best.estimated_seconds(&cost, p, bytes);
            // Every schedule ran exactly once per rank explicitly; the
            // selector adds a second p calls to exactly one of them.
            for algo in ScanAlgorithm::ALL {
                let calls = outcome.stats.scan_algorithm_calls(algo);
                let t_algo = algo.estimated_seconds(&cost, p, bytes);
                if calls == 2 * p as u64 {
                    assert!(
                        t_algo <= t_best * (1.0 + 1e-9),
                        "selector picked {} ({t_algo}s) over {} ({t_best}s) at p={p} bytes={bytes}",
                        algo.name(),
                        best.name()
                    );
                } else {
                    assert_eq!(calls, p as u64, "{} p={p} bytes={bytes}", algo.name());
                }
            }
        }
    }
}

#[test]
fn default_call_shapes_stay_on_recursive_doubling() {
    // Guard for the recorded figures: every pre-existing call site uses
    // small non-splittable states (8-byte offsets and the like), which
    // the selector must keep on the shifted recursive-doubling schedule —
    // so FIG2/FIG3 and mpi_call_stats recordings cannot move.
    for p in [2usize, 4, 8, 16] {
        let outcome = Runtime::new(p).run(|comm| {
            let n = comm.rank() as u64;
            comm.scan_inclusive(n, |_| 8, |a, b| a + b);
            comm.scan_exclusive(n, || 0, |_| 8, |a, b| a + b);
        });
        assert_eq!(
            outcome
                .stats
                .scan_algorithm_calls(ScanAlgorithm::RecursiveDoubling),
            2 * p as u64,
            "p={p}"
        );
        assert_eq!(outcome.stats.scan_algorithm_calls(ScanAlgorithm::Binomial), 0);
        assert_eq!(
            outcome
                .stats
                .scan_algorithm_calls(ScanAlgorithm::PipelinedChain),
            0
        );
    }

    // The NAS IS offset computation (an 8-byte exclusive scan through
    // localview::local_xscan) is attributed to the selector's
    // recursive-doubling pick on every rank.
    let keys_per_rank = 64usize;
    let outcome = Runtime::new(8).run(move |comm| {
        let keys: Vec<u32> = (0..keys_per_rank)
            .map(|i| ((comm.rank() * keys_per_rank + i) * 97 % 512) as u32)
            .collect();
        gv_nas::is::distributed_sort(comm, &keys, 512)
    });
    assert_eq!(outcome.stats.calls(CallKind::Exscan), 8);
    assert_eq!(
        outcome
            .stats
            .scan_algorithm_calls(ScanAlgorithm::RecursiveDoubling),
        8
    );
    // Offsets are consistent: sorted blocks tile the global array.
    let mut expect = 0u64;
    for block in outcome.results {
        assert_eq!(block.global_offset, expect);
        expect += block.keys.len() as u64;
    }
}

#[test]
fn nonblocking_scans_move_the_identical_traffic_as_blocking() {
    // Blocking scans are the same schedule implementations driven on
    // the stack, so `iscan_inclusive`/`iscan_exclusive` + wait must move
    // bit-identical message and byte totals — at small states (shifted
    // recursive doubling) and large ones (the binomial sweeps).
    let wire = |v: &Vec<i64>| v.len() * 8;
    let add = |mut a: Vec<i64>, b: Vec<i64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    for p in [2usize, 5, 16] {
        for bytes in [8usize, 64 << 10] {
            let run = |nonblocking: bool| {
                Runtime::new(p).run(move |comm| {
                    let state = vec![comm.rank() as i64 + 1; bytes / 8];
                    if nonblocking {
                        let mut inc = comm.iscan_inclusive(state.clone(), wire, add);
                        let mut exc = comm.iscan_exclusive(state, Vec::new, wire, add);
                        (
                            inc.wait().expect("transport alive"),
                            exc.wait().expect("transport alive"),
                        )
                    } else {
                        (
                            comm.scan_inclusive(state.clone(), wire, add),
                            comm.scan_exclusive(state, Vec::new, wire, add),
                        )
                    }
                })
            };
            let blocking = run(false);
            let requests = run(true);
            assert_eq!(blocking.results, requests.results, "results, p={p} bytes={bytes}");
            assert_eq!(
                blocking.stats.messages, requests.stats.messages,
                "messages, p={p} bytes={bytes}"
            );
            assert_eq!(
                blocking.stats.bytes, requests.stats.bytes,
                "bytes, p={p} bytes={bytes}"
            );
            for algo in ScanAlgorithm::ALL {
                assert_eq!(
                    blocking.stats.scan_algorithm_calls(algo),
                    requests.stats.scan_algorithm_calls(algo),
                    "algorithm counter {algo:?}, p={p} bytes={bytes}"
                );
            }
        }
    }
}
