//! Property tests of the three allreduce schedules and the cost-driven
//! selector, on the in-tree `gv-testkit` runner.
//!
//! The contract under test: reduce+bcast, recursive doubling, and
//! reduce-scatter+allgather all compute the same rank-order reduction as
//! a sequential fold — for every rank count in 1..17 (covering both
//! powers of two and the fold/unfold edge cases), for commutative and
//! non-commutative operators, and for splittable and scalar states —
//! and the selector never picks an ineligible schedule.
//!
//! Every failure message prints a case seed; rerun just that input with
//! `GV_TESTKIT_SEED=<seed> cargo test <test name>`.

use gv_testkit::prop::{check, i64s, usizes, vec_of, Config};
use gv_testkit::prop_assert_eq;

use gv_core::ops::histogram::Histogram;
use gv_core::ops::topk::TopBottomK;
use gv_core::split::{split_vec_segments, unsplit_vec_segments};
use gv_executor::chunk_ranges;
use gv_msgpass::{AllreduceAlgorithm, CostModel, Runtime};

fn cfg() -> Config {
    Config::new(128)
}

#[test]
fn scalar_schedules_agree_with_fold_oracle() {
    check(
        "scalar_schedules_agree_with_fold_oracle",
        &cfg(),
        &(vec_of(i64s(-1000..1000), 1..17), usizes(1..17)),
        |(values, p)| {
            let p = *p;
            let per_rank: Vec<i64> = (0..p)
                .map(|r| values.get(r % values.len()).copied().unwrap_or(0))
                .collect();
            let expected: i64 = per_rank.iter().sum();
            let outcome = Runtime::new(p).run(|comm| {
                let mine = per_rank[comm.rank()];
                let selector = comm.allreduce(mine, true, |_| 8, |a, b| a + b);
                let rb = comm.allreduce_reduce_bcast(mine, true, |_| 8, |a, b| a + b);
                let rd = comm.allreduce_recursive_doubling(mine, |_| 8, |a, b| a + b);
                (selector, rb, rd)
            });
            for (selector, rb, rd) in outcome.results {
                prop_assert_eq!(selector, expected);
                prop_assert_eq!(rb, expected);
                prop_assert_eq!(rd, expected);
            }
            Ok(())
        },
    );
}

#[test]
fn noncommutative_schedules_preserve_rank_order() {
    check(
        "noncommutative_schedules_preserve_rank_order",
        &cfg(),
        &usizes(1..17),
        |p| {
            let p = *p;
            let expected: String = (0..p).map(|r| format!("[{r}]")).collect();
            let outcome = Runtime::new(p).run(|comm| {
                let mine = format!("[{}]", comm.rank());
                let concat = |a: String, b: String| a + &b;
                let wire = |s: &String| s.len();
                let selector = comm.allreduce(mine.clone(), false, wire, concat);
                let rb = comm.allreduce_reduce_bcast(mine.clone(), false, wire, concat);
                let rd = comm.allreduce_recursive_doubling(mine, wire, concat);
                (selector, rb, rd)
            });
            for (selector, rb, rd) in outcome.results {
                prop_assert_eq!(&selector, &expected);
                prop_assert_eq!(&rb, &expected);
                prop_assert_eq!(&rd, &expected);
            }
            Ok(())
        },
    );
}

#[test]
fn splittable_schedules_agree_on_vector_states() {
    // Vector lengths 0..40 over p in 1..17 cover len < p (empty
    // segments), len == p, and len > p, plus the empty state.
    check(
        "splittable_schedules_agree_on_vector_states",
        &cfg(),
        &(vec_of(i64s(-500..500), 0..40), usizes(1..17)),
        |(data, p)| {
            let p = *p;
            let len = data.len();
            let expected: Vec<i64> = (0..len)
                .map(|i| (0..p as i64).map(|r| data[i] + r).sum())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                let r = comm.rank() as i64;
                let mine: Vec<i64> = data.iter().map(|&x| x + r).collect();
                let wire = |v: &Vec<i64>| v.len() * 8;
                let add = |mut a: Vec<i64>, b: Vec<i64>| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                };
                let selected = comm.allreduce_splittable(
                    mine.clone(),
                    true,
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                let ring = comm.allreduce_reduce_scatter(
                    mine.clone(),
                    split_vec_segments,
                    unsplit_vec_segments,
                    wire,
                    add,
                );
                let rd = comm.allreduce_recursive_doubling(mine, wire, add);
                (selected, ring, rd)
            });
            for (selected, ring, rd) in outcome.results {
                prop_assert_eq!(&selected, &expected);
                prop_assert_eq!(&ring, &expected);
                prop_assert_eq!(&rd, &expected);
            }
            Ok(())
        },
    );
}

#[test]
fn splittable_global_view_reductions_match_sequential_oracle() {
    check(
        "splittable_global_view_reductions_match_sequential_oracle",
        &cfg(),
        &(vec_of(i64s(0..1000), 0..120), usizes(1..17)),
        |(raw, p)| {
            let p = *p;
            // Histogram over f64 samples through reduce_all_splittable.
            let samples: Vec<f64> = raw.iter().map(|&x| x as f64 / 10.0).collect();
            let hist = Histogram::uniform(0.0, 100.0, 16);
            let expected_hist = gv_core::seq::reduce(&hist, &samples);
            let chunks: Vec<Vec<f64>> = chunk_ranges(samples.len(), p)
                .map(|range| samples[range].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                gv_rsmpi::reduce_all_splittable(
                    comm,
                    &Histogram::uniform(0.0, 100.0, 16),
                    &chunks[comm.rank()],
                )
            });
            for got in outcome.results {
                prop_assert_eq!(&got, &expected_hist);
            }

            // TopBottomK over (value, index) pairs through the iterator
            // entry point.
            let pairs: Vec<(f64, u64)> = samples
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u64))
                .collect();
            let op = TopBottomK::<f64, u64>::new(5);
            let expected_topk = gv_core::seq::reduce(&op, &pairs);
            let pair_chunks: Vec<Vec<(f64, u64)>> = chunk_ranges(pairs.len(), p)
                .map(|range| pairs[range].to_vec())
                .collect();
            let outcome = Runtime::new(p).run(|comm| {
                gv_rsmpi::reduce_all_from_iter_splittable(
                    comm,
                    &TopBottomK::<f64, u64>::new(5),
                    pair_chunks[comm.rank()].iter().copied(),
                )
            });
            for got in outcome.results {
                prop_assert_eq!(&got, &expected_topk);
            }
            Ok(())
        },
    );
}

#[test]
fn selector_only_picks_eligible_schedules() {
    check(
        "selector_only_picks_eligible_schedules",
        &cfg(),
        &(usizes(1..64), usizes(0..21)),
        |(p, log_bytes)| {
            let cost = CostModel::cluster_2006();
            let bytes = 1usize << *log_bytes;
            for commutative in [true, false] {
                for splittable in [true, false] {
                    let picked =
                        AllreduceAlgorithm::select(&cost, *p, bytes, commutative, splittable);
                    if picked == AllreduceAlgorithm::ReduceScatterAllgather
                        && !(commutative && splittable)
                    {
                        return Err(format!(
                            "ring selected for commutative={commutative} \
                             splittable={splittable} p={p} bytes={bytes}"
                        ));
                    }
                    if matches!(
                        picked,
                        AllreduceAlgorithm::PipelinedRing | AllreduceAlgorithm::PipelinedTree
                    ) && !splittable
                    {
                        return Err(format!(
                            "pipelined schedule selected for non-splittable \
                             state p={p} bytes={bytes}"
                        ));
                    }
                    // The pick is never strictly worse than any other
                    // eligible schedule.
                    for other in AllreduceAlgorithm::ALL {
                        if other == AllreduceAlgorithm::ReduceScatterAllgather
                            && !(commutative && splittable)
                        {
                            continue;
                        }
                        if matches!(
                            other,
                            AllreduceAlgorithm::PipelinedRing
                                | AllreduceAlgorithm::PipelinedTree
                        ) && !splittable
                        {
                            continue;
                        }
                        let t_picked = picked.estimated_seconds(&cost, *p, bytes);
                        let t_other = other.estimated_seconds(&cost, *p, bytes);
                        if t_picked > t_other {
                            return Err(format!(
                                "{} (={t_picked}) beat by {} (={t_other}) at p={p} bytes={bytes}",
                                picked.name(),
                                other.name()
                            ));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn crossover_ring_beats_reduce_bcast_at_64kib_p8() {
    // The acceptance pin: both in the α–β estimate and in the measured
    // virtual clock, reduce-scatter+allgather wins for a 64 KiB
    // splittable state at p = 8.
    let cost = CostModel::cluster_2006();
    let rsag = AllreduceAlgorithm::ReduceScatterAllgather.estimated_seconds(&cost, 8, 64 << 10);
    let rb = AllreduceAlgorithm::ReduceBroadcast.estimated_seconds(&cost, 8, 64 << 10);
    assert!(rsag < rb, "estimate: rsag={rsag} rb={rb}");

    let measured = |ring: bool| {
        Runtime::new(8)
            .run(move |comm| {
                let state = vec![1u64; 8 << 10]; // 64 KiB of u64s
                let wire = |v: &Vec<u64>| v.len() * 8;
                let add = |mut a: Vec<u64>, b: Vec<u64>| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                };
                if ring {
                    comm.allreduce_reduce_scatter(
                        state,
                        split_vec_segments,
                        unsplit_vec_segments,
                        wire,
                        add,
                    );
                } else {
                    comm.allreduce_reduce_bcast(state, true, wire, add);
                }
            })
            .modeled_seconds
    };
    let t_ring = measured(true);
    let t_rb = measured(false);
    assert!(t_ring < t_rb, "measured: ring={t_ring} reduce+bcast={t_rb}");
}

#[test]
fn non_power_of_two_selector_matrix_stays_within_5pct_of_best() {
    // The Issue-7 acceptance matrix: at p = 6, 12, 24 (where the old
    // ring reduce-scatter and the mean-segment pricing degraded) every
    // schedule still matches the oracle, and the selector's pick never
    // loses more than 5% modeled time to the best fixed schedule.
    let wire = |v: &Vec<u64>| v.len() * 8;
    let add = |mut a: Vec<u64>, b: Vec<u64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    for p in [6usize, 12, 24] {
        for bytes in [8usize, 4 << 10, 64 << 10, 256 << 10] {
            let elems = bytes / 8;
            let expected: Vec<u64> = (0..elems as u64)
                .map(|i| (0..p as u64).map(|r| r + i).sum())
                .collect();
            // schedule 0 = cost-driven selector, 1..=3 fixed schedules.
            let modeled: Vec<f64> = (0..4usize)
                .map(|which| {
                    let outcome = Runtime::new(p).run(move |comm| {
                        let r = comm.rank() as u64;
                        let state: Vec<u64> = (0..elems as u64).map(|i| r + i).collect();
                        match which {
                            0 => comm.allreduce_splittable(
                                state,
                                true,
                                split_vec_segments,
                                unsplit_vec_segments,
                                wire,
                                add,
                            ),
                            1 => comm.allreduce_reduce_bcast(state, true, wire, add),
                            2 => comm.allreduce_recursive_doubling(state, wire, add),
                            _ => comm.allreduce_reduce_scatter(
                                state,
                                split_vec_segments,
                                unsplit_vec_segments,
                                wire,
                                add,
                            ),
                        }
                    });
                    for got in &outcome.results {
                        assert_eq!(got, &expected, "which={which} p={p} bytes={bytes}");
                    }
                    outcome.modeled_seconds
                })
                .collect();
            let best_fixed = modeled[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                modeled[0] <= 1.05 * best_fixed,
                "selector pick loses >5% at p={p} bytes={bytes}: \
                 selector={} best fixed={best_fixed} (all: {modeled:?})",
                modeled[0]
            );
        }
    }
}

#[test]
fn nonblocking_allreduce_moves_the_identical_traffic_as_blocking() {
    // The refactor's invariant: blocking allreduce is `iallreduce` +
    // wait over the *same* schedule implementation, so the two variants
    // must move bit-identical message and byte totals for every
    // schedule the selector can route to (reduce+bcast at small states,
    // recursive doubling in the middle, reduce-scatter+allgather via
    // the splittable path at the large end).
    let wire = |v: &Vec<u64>| v.len() * 8;
    let add = |mut a: Vec<u64>, b: Vec<u64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    for p in [2usize, 3, 8, 16] {
        for bytes in [8usize, 64 << 10] {
            let run = |nonblocking: bool| {
                Runtime::new(p).run(move |comm| {
                    let state = vec![comm.rank() as u64; bytes / 8];
                    if nonblocking {
                        let mut req = comm.iallreduce(state, true, wire, add);
                        req.wait().expect("transport alive")
                    } else {
                        comm.allreduce(state, true, wire, add)
                    }
                })
            };
            let blocking = run(false);
            let requests = run(true);
            assert_eq!(blocking.results, requests.results, "results, p={p} bytes={bytes}");
            assert_eq!(
                blocking.stats.messages, requests.stats.messages,
                "messages, p={p} bytes={bytes}"
            );
            assert_eq!(
                blocking.stats.bytes, requests.stats.bytes,
                "bytes, p={p} bytes={bytes}"
            );
            for algo in AllreduceAlgorithm::ALL {
                assert_eq!(
                    blocking.stats.allreduce_algorithm_calls(algo),
                    requests.stats.allreduce_algorithm_calls(algo),
                    "algorithm counter {algo:?}, p={p} bytes={bytes}"
                );
            }

            let run_splittable = |nonblocking: bool| {
                Runtime::new(p).run(move |comm| {
                    let state = vec![comm.rank() as u64; bytes / 8];
                    if nonblocking {
                        let mut req = comm.iallreduce_splittable(
                            state,
                            true,
                            split_vec_segments,
                            unsplit_vec_segments,
                            wire,
                            add,
                        );
                        req.wait().expect("transport alive")
                    } else {
                        comm.allreduce_splittable(
                            state,
                            true,
                            split_vec_segments,
                            unsplit_vec_segments,
                            wire,
                            add,
                        )
                    }
                })
            };
            let blocking = run_splittable(false);
            let requests = run_splittable(true);
            assert_eq!(
                blocking.results, requests.results,
                "splittable results, p={p} bytes={bytes}"
            );
            assert_eq!(
                blocking.stats.messages, requests.stats.messages,
                "splittable messages, p={p} bytes={bytes}"
            );
            assert_eq!(
                blocking.stats.bytes, requests.stats.bytes,
                "splittable bytes, p={p} bytes={bytes}"
            );
        }
    }
}
