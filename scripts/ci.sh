#!/usr/bin/env sh
# Hermetic tier-1 gate: build and test with no network and no registry.
#
# The workspace has zero external dependencies (see DESIGN.md,
# "Dependencies"), so --offline must always succeed from a fresh checkout;
# if this script fails with a registry error, someone reintroduced an
# external crate.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --benches
cargo clippy --all-targets --offline -- -D warnings

# Run the whole test suite under a stall watchdog (see DESIGN.md,
# "Failure semantics and chaos harness"): any hang regression surfaces as
# a typed RunError::Stalled with a per-rank blocked-on report instead of
# wedging CI until an outer timeout kills it. The chaos soak
# (crates/msgpass/tests/chaos_soak.rs) runs as part of the workspace
# suite with its pinned, replayable seeds.
GV_WATCHDOG_MS=30000 cargo test -q --offline --workspace

# Smoke-run the figure/ablation harnesses with shrunk iteration counts:
# catches bins that build but panic at runtime (bad arg parsing, schedule
# assertion failures, transports disagreeing on message accounting).
export GV_BENCH_QUICK=1
for bin in fig2_is_verify fig3_mg_zran3 mpi_call_stats \
           ablation_commutative ablation_aggregation \
           ablation_scan_algorithm ablation_allreduce_algorithm \
           ablation_selector_tuning \
           transport_microbench k_independent_allreduces \
           kernel_microbench pipeline_microbench nas_cg; do
    echo "smoke: $bin"
    ./target/release/"$bin" > /dev/null
done

# The scan-schedule ablation grew flags in its rewrite; exercise them so
# argument parsing and the CSV path stay alive.
echo "smoke: ablation_scan_algorithm --csv --procs 2,4 --sizes 8,4096"
./target/release/ablation_scan_algorithm --csv --procs 2,4 --sizes 8,4096 > /dev/null

# The pipeline microbench embeds the selector-within-5% and ≥2× speedup
# acceptance asserts; run its pool-counter path too so the freelist
# plumbing stays alive (counters go to stderr, not the recorded table).
echo "smoke: pipeline_microbench --pool"
./target/release/pipeline_microbench --pool > /dev/null 2> /dev/null
