#!/usr/bin/env sh
# Hermetic tier-1 gate: build and test with no network and no registry.
#
# The workspace has zero external dependencies (see DESIGN.md,
# "Dependencies"), so --offline must always succeed from a fresh checkout;
# if this script fails with a registry error, someone reintroduced an
# external crate.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --benches
cargo clippy --all-targets --offline -- -D warnings
cargo test -q --offline --workspace
