//! The paper's §3.1.3 particle example: octant occupancy counts (reduce)
//! and within-octant rankings (scan) with the `counts` operator — the
//! operator whose reduce and scan *generate* functions differ.
//!
//! Run with: `cargo run --example particles`

use gv_core::prelude::*;
use gv_msgpass::Runtime;

fn main() {
    // "ten particles are located in octants 1 through 8 based on the
    // ordered set [6,7,6,3,8,2,8,4,8,3]".
    let octants_1based: Vec<usize> = vec![6, 7, 6, 3, 8, 2, 8, 4, 8, 3];
    let octants: Vec<usize> = octants_1based.iter().map(|&o| o - 1).collect();
    println!("particle octants: {octants_1based:?}\n");

    // Reduction: how many particles are in each octant?
    // Paper: [0, 1, 2, 1, 0, 2, 1, 3].
    let counts = reduce(&Counts::new(8), &octants);
    println!("counts reduce   = {counts:?}");

    // Scan: each particle's 1-based rank within its octant.
    // Paper: [1, 1, 2, 1, 1, 1, 2, 1, 3, 2].
    let ranks = scan(&BucketRank::new(8), &octants, ScanKind::Inclusive);
    println!("ranking scan    = {ranks:?}");

    // The same two queries with the particles distributed over 3 ranks —
    // the global-view abstraction makes the call sites identical; only
    // the data placement changes.
    let outcome = Runtime::new(3).run(|comm| {
        let per_rank = octants.len().div_ceil(comm.size());
        let mine: Vec<usize> = octants
            .chunks(per_rank)
            .nth(comm.rank())
            .map(|c| c.to_vec())
            .unwrap_or_default();
        let counts = gv_rsmpi::reduce_all(comm, &Counts::new(8), &mine);
        let ranks = gv_rsmpi::scan(comm, &BucketRank::new(8), &mine, ScanKind::Inclusive);
        (counts, ranks)
    });
    println!("\ndistributed over 3 ranks:");
    println!("  counts (on every rank) = {:?}", outcome.results[0].0);
    let all_ranks: Vec<u64> = outcome
        .results
        .iter()
        .flat_map(|(_, r)| r.iter().copied())
        .collect();
    println!("  rankings (concatenated) = {all_ranks:?}");

    assert_eq!(counts, vec![0, 1, 2, 1, 0, 2, 1, 3]);
    assert_eq!(ranks, vec![1, 1, 2, 1, 1, 1, 2, 1, 3, 2]);
    assert_eq!(outcome.results[0].0, counts);
    assert_eq!(all_ranks, ranks);
    println!("\nall results match the paper's §3.1.3 worked example ✓");
}
