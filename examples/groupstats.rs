//! Segmented scans and streaming statistics: per-group prefix sums with
//! the `Segmented` operator (the NESL primitive expressed as an ordinary
//! user-defined operator) and one-pass moments with `MeanVar`.
//!
//! Run with: `cargo run --example groupstats`

use gv_core::ops::builtin::Sum;
use gv_core::ops::segmented::{flag_segments, Segmented};
use gv_core::prelude::*;
use gv_msgpass::Runtime;

fn main() {
    // Sales per (region, amount), grouped by region, in region order.
    let sales: Vec<(&str, i64)> = vec![
        ("east", 120),
        ("east", 80),
        ("east", 45),
        ("north", 300),
        ("north", 10),
        ("south", 55),
        ("west", 220),
        ("west", 35),
        ("west", 90),
        ("west", 5),
    ];
    println!("sales: {sales:?}\n");

    // Per-region running totals in ONE scan: a segment starts where the
    // region changes.
    let flagged = flag_segments(&sales, |a, b| a.0 != b.0);
    let input: Vec<(i64, bool)> = flagged.iter().map(|((_, v), s)| (*v, *s)).collect();
    let running = scan(&Segmented(Sum::default()), &input, ScanKind::Inclusive);
    println!("per-region running totals:");
    for ((region, amount), total) in sales.iter().zip(&running) {
        println!("  {region:<6} {amount:>5}  → {total:>5}");
    }

    // The same scan over the distributed array — segments may straddle
    // rank boundaries; the parallel-prefix machinery handles it.
    let outcome = Runtime::new(4).run(|comm| {
        let per_rank = input.len().div_ceil(comm.size());
        let mine: Vec<(i64, bool)> = input
            .chunks(per_rank)
            .nth(comm.rank())
            .map(|c| c.to_vec())
            .unwrap_or_default();
        gv_rsmpi::scan(comm, &Segmented(Sum::default()), &mine, ScanKind::Inclusive)
    });
    let distributed: Vec<i64> = outcome.results.into_iter().flatten().collect();
    assert_eq!(distributed, running);
    println!("\ndistributed over 4 ranks: identical ✓");

    // One-pass moments of the amounts: count, mean, variance in a single
    // reduction with three distinct types (f64 in, moment state, summary
    // out) — the type flexibility §3 is about.
    let amounts: Vec<f64> = sales.iter().map(|(_, v)| *v as f64).collect();
    let m = reduce(&MeanVar, &amounts);
    println!(
        "\namount moments: n={} mean={:.1} std={:.1}",
        m.count,
        m.mean,
        m.std_dev()
    );

    // And the two extremes in one pass instead of two reductions.
    let envelope = reduce(&minmax(), &amounts);
    println!("amount range  : {envelope:?}");
}
