//! Quickstart: built-in and user-defined reductions and scans on every
//! engine, using the paper's running example (§1): the ordered set
//! `[6, 7, 6, 3, 8, 2, 8, 4, 8, 3]`.
//!
//! Run with: `cargo run --example quickstart`

use gv_core::prelude::*;
use gv_executor::Pool;
use gv_msgpass::Runtime;

fn main() {
    let data: Vec<i64> = vec![6, 7, 6, 3, 8, 2, 8, 4, 8, 3];
    println!("ordered set: {data:?}\n");

    // ---- Built-in operators, sequential engine --------------------------
    println!("sum  reduce  = {}", reduce(&sum::<i64>(), &data));
    println!("min  reduce  = {}", reduce(&min::<i64>(), &data));
    println!("max  reduce  = {}", reduce(&max::<i64>(), &data));
    println!(
        "sum  scan    = {:?}",
        scan(&sum::<i64>(), &data, ScanKind::Inclusive)
    );
    println!(
        "sum  xscan   = {:?}",
        scan(&sum::<i64>(), &data, ScanKind::Exclusive)
    );

    // ---- A user-defined operator from the paper: mink -------------------
    // Chapel (§3.1.1):  minimums = mink(integer, 3) reduce A;
    println!("\nmink(3)      = {:?}", reduce(&MinK::<i64>::new(3), &data));

    // mini (§3.1.2): minimum value and its (1-based) location.
    let pairs: Vec<(i64, usize)> = data.iter().copied().zip(1..).collect();
    println!("mini         = {:?}", reduce(&mini(), &pairs));

    // sorted (§3.1.4): is the ordered set sorted?
    println!("sorted       = {}", reduce(&Sorted::<i64>::new(), &data));
    let mut ascending = data.clone();
    ascending.sort();
    println!("sorted(asc)  = {}", reduce(&Sorted::<i64>::new(), &ascending));

    // ---- The same computation on virtual processors ----------------------
    // Shared-memory engine: Figure 1's accumulate + combine phases over
    // chunked virtual processors.
    let pool = Pool::with_default_parallelism();
    let par_sum = par_reduce(&pool, 4, &sum::<i64>(), &data);
    println!("\nshared-memory (4 virtual processors): sum = {par_sum}");

    // Message-passing engine (RSMPI): each rank owns a block of the
    // conceptual array; only operator states cross the network.
    let outcome = Runtime::new(5).run(|comm| {
        let chunk: Vec<i64> = data
            .chunks(2)
            .nth(comm.rank())
            .map(|c| c.to_vec())
            .unwrap_or_default();
        let k_smallest = gv_rsmpi::reduce_all(comm, &MinK::<i64>::new(3), &chunk);
        let prefix_sums = gv_rsmpi::scan(comm, &sum::<i64>(), &chunk, ScanKind::Inclusive);
        (k_smallest, prefix_sums)
    });
    println!("\nmessage passing (5 ranks, 2 elements each):");
    println!("  mink(3) on every rank  = {:?}", outcome.results[0].0);
    let flat: Vec<i64> = outcome
        .results
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .collect();
    println!("  distributed sum scan   = {flat:?}");
    println!(
        "  modeled parallel time  = {:.1} µs, wire messages = {}",
        outcome.modeled_seconds * 1e6,
        outcome.stats.messages
    );
}
