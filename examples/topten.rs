//! NAS MG ZRAN3-style extrema (paper §4.2): the ten largest and ten
//! smallest values of a distributed random grid, with locations — forty
//! built-in reductions versus one user-defined reduction.
//!
//! Run with: `cargo run --release --example topten`

use gv_msgpass::{CallKind, Runtime};
use gv_nas::mg::zran3::{fill_random, zran3, Zran3Variant};
use gv_nas::mg::Slab;

fn main() {
    let n = 32;
    let p = 8;
    println!("{n}³ grid of NPB random values over {p} ranks\n");

    for (variant, name) in Zran3Variant::ALL {
        let outcome = Runtime::new(p).run(move |comm| {
            let mut slab = Slab::for_rank(n, comm.rank(), comm.size());
            // Fill untimed so the comparison isolates the extrema search.
            fill_random(comm, &mut slab, gv_nas::randlc::DEFAULT_SEED);
            comm.barrier();
            let start = comm.now();
            let extrema = match variant {
                Zran3Variant::Mpi => gv_nas::mg::zran3::extrema_mpi(comm, &slab, 10),
                Zran3Variant::Rsmpi => gv_nas::mg::zran3::extrema_rsmpi(comm, &slab, 10),
            };
            comm.barrier();
            (extrema, comm.now() - start)
        });
        let time = outcome
            .results
            .iter()
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        let reductions = outcome.stats.calls(CallKind::Allreduce) / p as u64;
        let extrema = &outcome.results[0].0;
        println!("{name}: {reductions} reductions per rank, modeled {:.1} µs", time * 1e6);
        println!(
            "  largest : {:?}",
            extrema
                .largest
                .iter()
                .take(3)
                .map(|(v, i)| format!("{v:.6}@{i}"))
                .collect::<Vec<_>>()
        );
        println!(
            "  smallest: {:?}\n",
            extrema
                .smallest
                .iter()
                .take(3)
                .map(|(v, i)| format!("{v:.6}@{i}"))
                .collect::<Vec<_>>()
        );
    }

    // The full ZRAN3 contract: ±1 charges on a zeroed grid.
    let outcome = Runtime::new(p).run(move |comm| {
        let mut slab = Slab::for_rank(n, comm.rank(), comm.size());
        zran3(comm, &mut slab, 10, Zran3Variant::Rsmpi);
        let plus: usize = slab.data.iter().filter(|&&v| v == 1.0).count();
        let minus: usize = slab.data.iter().filter(|&&v| v == -1.0).count();
        (plus, minus)
    });
    let plus: usize = outcome.results.iter().map(|(a, _)| a).sum();
    let minus: usize = outcome.results.iter().map(|(_, b)| b).sum();
    println!("after zran3: {plus} cells at +1, {minus} cells at -1, rest 0 ✓");
}
