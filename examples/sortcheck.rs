//! NAS IS-style distributed sort verification (paper §4.1): the same
//! question answered three ways, with traffic and modeled-time accounting
//! printed for each.
//!
//! Run with: `cargo run --release --example sortcheck`

use gv_msgpass::Runtime;
use gv_nas::is::{distributed_sort, generate_keys, VerifyVariant};
use gv_nas::IsClass;

fn main() {
    let class = IsClass::W;
    let p = 8;
    println!(
        "NAS IS class {}: {} keys over {p} ranks\n",
        class.name,
        class.total_keys()
    );

    for (variant, name) in VerifyVariant::ALL {
        let outcome = Runtime::new(p).run(move |comm| {
            // Build the sorted distributed array (the benchmark body).
            let keys = generate_keys(class, comm.rank(), comm.size());
            let block = distributed_sort(comm, &keys, class.max_key());
            // The verification phase, isolated between barriers.
            comm.barrier();
            let start = comm.now();
            let ok = variant.verify(comm, &block.keys);
            comm.barrier();
            (ok, comm.now() - start)
        });
        let ok = outcome.results.iter().all(|(ok, _)| *ok);
        let time = outcome
            .results
            .iter()
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        println!(
            "{name:<20} verified={ok}   modeled time {:>9.1} µs",
            time * 1e6
        );
    }

    // And the paper's point about clarity: the RSMPI version *is* this one
    // line, over the conceptual entire array:
    //
    //     let ok = gv_rsmpi::reduce_all(comm, &Sorted::new(), &block.keys);
    //
    // versus the explicit boundary exchange + local loop + sum reduction
    // of the reference (see gv_nas::is::verify::verify_nas_mpi).
    println!("\n(listing: verify_rsmpi is a single reduce_all call — see gv_nas::is::verify)");
}
